// Differential suite for the two MiniLang execution engines (DESIGN.md §4j):
// every method body must produce the same value, the same field mutations,
// the same coherence image, and the same error message whether it runs on
// the tree-walking interpreter or the register-bytecode VM. Each scenario
// runs twice — once pinned to each engine via InterpOptions::exec — against
// a fresh instance, and the full outcome transcripts are compared.
//
// Coverage: every builtin, the arithmetic/comparison/logical operator
// surface, control flow (loops, break/continue, short-circuit), dynamic
// locals, the five in-tree mail views plus the good_* analysis fixtures,
// error parity (division by zero, undefined variables, bad indexing, step
// limits), and the per-method interpreter fallback when compilation fails.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "mail/components.hpp"
#include "minilang/compile.hpp"
#include "minilang/interp.hpp"
#include "minilang/optimize.hpp"
#include "minilang/parser.hpp"
#include "obs/metrics.hpp"
#include "views/cache.hpp"
#include "views/vig.hpp"

namespace psf {
namespace {

using minilang::ClassDef;
using minilang::ClassRegistry;
using minilang::EvalError;
using minilang::ExecMode;
using minilang::Instance;
using minilang::InterpOptions;
using minilang::MethodDef;
using minilang::Value;
using minilang::Visibility;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// One call's observable outcome: tagged result or the exact error text.
std::string call_outcome(const std::shared_ptr<Instance>& self,
                         const std::string& method, std::vector<Value> args,
                         ExecMode mode) {
  InterpOptions options;
  options.exec = mode;
  try {
    Value v = minilang::invoke_method(self, method, std::move(args),
                                      /*external=*/true, options);
    return "ok " + v.type_name() + ":" + v.to_display_string();
  } catch (const EvalError& e) {
    return std::string("error ") + e.what();
  }
}

// Serializable field state (object-valued fields carry no stable printable
// identity and are excluded, mirroring views::instance_image).
std::string field_snapshot(const ClassRegistry& registry, Instance& self) {
  std::ostringstream os;
  for (const auto* field : registry.all_fields(self.cls())) {
    const Value v = self.get_field(field->name);
    if (v.is_object()) continue;
    os << field->name << "=" << v.type_name() << ":" << v.to_display_string()
       << "\n";
  }
  return os.str();
}

// Run the same call sequence on a fresh instance under one engine and
// return the full transcript: per-call outcomes, the final field state,
// and the coherence image the view would push.
std::string transcript(const ClassRegistry& registry,
                       const std::string& class_name,
                       std::vector<Value> ctor_args,
                       const std::vector<std::pair<std::string,
                                                   std::vector<Value>>>& calls,
                       ExecMode mode) {
  InterpOptions options;
  options.exec = mode;
  std::ostringstream os;
  std::shared_ptr<Instance> self;
  try {
    self = minilang::instantiate(registry, class_name, std::move(ctor_args),
                                 options);
  } catch (const EvalError& e) {
    return std::string("ctor error ") + e.what();
  }
  for (const auto& [method, args] : calls) {
    os << method << " -> " << call_outcome(self, method, args, mode) << "\n";
  }
  os << "-- fields --\n" << field_snapshot(registry, *self);
  os << "-- image --\n" << util::to_hex(views::instance_image(*self)) << "\n";
  return os.str();
}

void expect_engines_agree(
    const ClassRegistry& registry, const std::string& class_name,
    const std::vector<Value>& ctor_args,
    const std::vector<std::pair<std::string, std::vector<Value>>>& calls) {
  const std::string interp =
      transcript(registry, class_name, ctor_args, calls, ExecMode::kInterp);
  const std::string bytecode =
      transcript(registry, class_name, ctor_args, calls, ExecMode::kBytecode);
  EXPECT_EQ(interp, bytecode) << class_name;
}

// Build a one-class registry from (name, params, body) method triples.
std::shared_ptr<ClassRegistry> make_registry(
    const std::string& class_name,
    const std::vector<std::tuple<std::string, std::vector<std::string>,
                                 std::string>>& methods,
    const std::vector<std::pair<std::string, Value>>& fields = {}) {
  auto registry = std::make_shared<ClassRegistry>();
  auto cls = std::make_shared<ClassDef>();
  cls->name = class_name;
  for (const auto& [name, initial] : fields) {
    cls->fields.push_back({name, initial.type_name(), initial});
  }
  for (const auto& [name, params, body] : methods) {
    MethodDef m;
    m.name = name;
    m.params = params;
    m.source = body;
    auto parsed = minilang::parse_block_source(body);
    EXPECT_TRUE(parsed.ok()) << name << ": " << parsed.error().message;
    m.body = std::move(parsed).take();
    m.visibility = Visibility::kPublic;
    cls->methods.push_back(std::move(m));
  }
  registry->register_class(cls);
  return registry;
}

// ---------------------------------------------------------------- builtins

TEST(BytecodeDiff, EveryBuiltinAgrees) {
  auto registry = make_registry(
      "Builtins",
      {
          {"lists", {}, R"(
              var l = list(1, 2, 3);
              push(l, 4);
              var popped = pop(l);
              return str(l) + "|" + str(popped) + "|" + str(len(l)) +
                     "|" + str(contains(l, 2));)"},
          {"maps", {}, R"(
              var m = map();
              put(m, "a", 1);
              put(m, "b", 2);
              var r = remove(m, "a");
              return str(get(m, "b")) + "|" + str(has(m, "a")) + "|" +
                     str(keys(m)) + "|" + str(len(m)) + "|" + str(r) +
                     "|" + str(get(m, "missing"));)"},
          {"strings", {}, R"(
              var s = "hello world";
              return substr(s, 0, 5) + "|" + str(contains(s, "wor")) +
                     "|" + str(len(s)) + "|" + text(bytes(s));)"},
          {"numbers", {}, R"(
              return str(min(3, 7)) + "|" + str(max(3, 7)) + "|" +
                     str(abs(0 - 9)) + "|" + typeof(1) + "|" + typeof("x") +
                     "|" + typeof(list());)"},
          {"printing", {}, R"(print("diff probe"); return 0;)"},
      });
  expect_engines_agree(*registry, "Builtins", {},
                       {{"lists", {}},
                        {"maps", {}},
                        {"strings", {}},
                        {"numbers", {}},
                        {"printing", {}}});
}

// ------------------------------------------------------- language surface

TEST(BytecodeDiff, OperatorsAndControlFlowAgree) {
  auto registry = make_registry(
      "Lang",
      {
          {"constructor", {}, "acc = 0;"},
          {"arith", {"a", "b"}, R"(
              return str(a + b) + "|" + str(a - b) + "|" + str(a * b) +
                     "|" + str(a / b) + "|" + str(a % b) + "|" + str(0 - a);)"},
          {"compare", {"a", "b"}, R"(
              return str(a == b) + str(a != b) + str(a < b) + str(a <= b) +
                     str(a > b) + str(a >= b) + str("x" < "y");)"},
          {"logic", {"x"}, R"(
              var hits = 0;
              if (x > 0 && sideEffect() > 0) { hits = hits + 1; }
              if (x > 0 || sideEffect() > 0) { hits = hits + 10; }
              return str(hits) + "|" + str(acc) + "|" + str(!(x > 0));)"},
          {"sideEffect", {}, "acc = acc + 1; return acc;"},
          {"loops", {"n"}, R"(
              var total = 0;
              for (var i = 0; i < n; i = i + 1) {
                if (i % 2 == 0) { continue; }
                if (i > 7) { break; }
                total = total + i;
              }
              var j = 0;
              while (true) {
                j = j + 1;
                if (j >= 3) { break; }
              }
              return str(total) + "|" + str(j);)"},
          {"dynamicLocals", {"flag"}, R"(
              if (flag) { var late = 41; }
              var late = late + 1;
              return late;)"},
          {"stringConcat", {}, R"(return "n=" + 42 + " b=" + true;)"},
      },
      {{"acc", Value::integer(0)}});
  expect_engines_agree(
      *registry, "Lang", {},
      {{"arith", {Value::integer(17), Value::integer(5)}},
       {"arith", {Value::integer(-17), Value::integer(5)}},
       {"compare", {Value::integer(3), Value::integer(3)}},
       {"compare", {Value::integer(2), Value::integer(9)}},
       {"logic", {Value::integer(1)}},
       {"logic", {Value::integer(0)}},
       {"loops", {Value::integer(20)}},
       {"dynamicLocals", {Value::boolean(true)}},
       {"dynamicLocals", {Value::boolean(false)}},  // use-before-declare error
       {"stringConcat", {}}});
}

// ------------------------------------------------------------ error parity

TEST(BytecodeDiff, ErrorMessagesAgree) {
  auto registry = make_registry(
      "Errs",
      {
          {"constructor", {}, "hits = 0;"},
          {"divZero", {}, "return 1 / (hits * 0);"},
          {"modZero", {}, "return 1 % (hits * 0);"},
          {"undefinedVar", {}, "return ghost + 1;"},
          {"listRange", {}, "var l = list(1); return l[5];"},
          {"strRange", {}, "var s = \"ab\"; return s[9];"},
          {"badIndex", {}, "var n = 4; return n[0];"},
          {"badMember", {}, "var n = 4; return n.field;"},
          {"missingMethod", {}, "hits = hits + 1; return nowhere();"},
          {"mutateThenThrow", {}, "hits = hits + 1; return 1 / 0;"},
      },
      {{"hits", Value::integer(0)}});
  expect_engines_agree(*registry, "Errs", {},
                       {{"divZero", {}},
                        {"modZero", {}},
                        {"undefinedVar", {}},
                        {"listRange", {}},
                        {"strRange", {}},
                        {"badIndex", {}},
                        {"badMember", {}},
                        {"missingMethod", {}},   // args/mutations before throw
                        {"mutateThenThrow", {}},
                        {"divZero", {}}});
}

TEST(BytecodeDiff, StepLimitAgrees) {
  auto registry = make_registry(
      "Spin", {{"spin", {}, "var i = 0; while (true) { i = i + 1; }"}});
  for (ExecMode mode : {ExecMode::kInterp, ExecMode::kBytecode}) {
    InterpOptions options;
    options.exec = mode;
    options.max_steps = 10'000;
    auto obj = minilang::instantiate(*registry, "Spin", {}, options);
    try {
      minilang::invoke_method(obj, "spin", {}, /*external=*/true, options);
      FAIL() << "step limit did not fire";
    } catch (const EvalError& e) {
      EXPECT_STREQ(e.what(), "step limit exceeded");
    }
  }
}

// ----------------------------------------------------------- view classes

// Generate a view, then run its public scripted methods under both engines
// and require identical transcripts (results, fields, coherence image).
void diff_view(ClassRegistry& registry, const std::string& xml,
               const std::vector<std::pair<std::string,
                                           std::vector<Value>>>& calls) {
  auto def = views::ViewDefinition::from_xml(xml);
  ASSERT_TRUE(def.ok()) << def.error().message;
  views::Vig vig(&registry);
  auto cls = vig.generate(def.value());
  ASSERT_TRUE(cls.ok()) << cls.error().message;
  expect_engines_agree(registry, cls.value()->name, {}, calls);
}

// Every public spliced/copied method with no parameters, probed generically
// (int args would only exercise the arity check, which is engine-neutral).
std::vector<std::pair<std::string, std::vector<Value>>> zero_arg_calls(
    const ClassDef& cls) {
  std::vector<std::pair<std::string, std::vector<Value>>> calls;
  for (const auto& m : cls.methods) {
    if (m.is_native || m.name == "constructor") continue;
    if (m.visibility != Visibility::kPublic) continue;
    if (!m.params.empty()) continue;
    calls.push_back({m.name, {}});
  }
  return calls;
}

TEST(BytecodeDiff, MemberViewAgrees) {
  ClassRegistry registry;
  mail::register_all(registry);
  diff_view(registry, mail::view_xml_member(),
            {{"addNote", {Value::string("remember the milk")}},
             {"addNote", {Value::string("second note")}},
             {"receiveMessages", {}},
             {"addAccount",
              {Value::string("a"), Value::string("p"), Value::string("e")}}});
}

TEST(BytecodeDiff, PartnerViewAgrees) {
  ClassRegistry registry;
  mail::register_all(registry);
  diff_view(registry, mail::view_xml_partner(),
            {{"addAccount",
              {Value::string("alice"), Value::string("555"),
               Value::string("alice@x")}},
             {"getPhone", {Value::string("alice")}},
             {"getEmail", {Value::string("alice")}},
             {"getPhone", {Value::string("nobody")}},
             {"addNote", {Value::string("from the view")}}});
}

TEST(BytecodeDiff, RemainingInTreeViewsAgree) {
  const std::string xmls[] = {mail::view_xml_anonymous(),
                              mail::view_xml_mail_server_cache(),
                              mail::view_xml_client_replica()};
  for (const std::string& xml : xmls) {
    ClassRegistry registry;
    mail::register_all(registry);
    auto def = views::ViewDefinition::from_xml(xml);
    ASSERT_TRUE(def.ok());
    views::Vig vig(&registry);
    auto cls = vig.generate(def.value());
    ASSERT_TRUE(cls.ok()) << cls.error().message;
    expect_engines_agree(registry, cls.value()->name, {},
                         zero_arg_calls(*cls.value()));
  }
}

TEST(BytecodeDiff, GoodAnalysisFixtureViewsAgree) {
  const char* fixtures[] = {"good_reachability.xml", "good_use_before_init.xml",
                            "good_dead_members.xml", "good_exposure.xml",
                            "good_coherence.xml"};
  for (const char* name : fixtures) {
    ClassRegistry registry;
    mail::register_all(registry);
    auto def = views::ViewDefinition::from_xml(
        read_file(std::string(PSF_ANALYSIS_FIXTURE_DIR) + "/" + name));
    ASSERT_TRUE(def.ok()) << name;
    views::Vig vig(&registry);
    auto cls = vig.generate(def.value());
    ASSERT_TRUE(cls.ok()) << name << ": " << cls.error().message;
    expect_engines_agree(registry, cls.value()->name, {},
                         zero_arg_calls(*cls.value()));
  }
}

// ------------------------------------------------------ fallback behaviour

TEST(BytecodeDiff, FailedCompileFallsBackToInterpreter) {
  auto registry = make_registry(
      "Fb", {{"work", {"a", "b"}, "return a * 10 + b;"}});
  const auto cls = registry->find_class("Fb");
  const MethodDef* method = cls->find_method("work");
  ASSERT_NE(method, nullptr);

  // Poison the method's compile slot: a 1-register budget cannot hold the
  // parameters, so compilation fails and the failure sticks.
  minilang::CompileOptions tiny;
  tiny.max_registers = 1;
  EXPECT_EQ(minilang::ensure_compiled(*registry, *cls, *method, tiny),
            nullptr);

  auto& fallbacks = obs::counter("psf.minilang.interp_fallbacks");
  const std::uint64_t before = fallbacks.value();

  auto obj = minilang::instantiate(*registry, "Fb");
  InterpOptions options;
  options.exec = ExecMode::kBytecode;
  const Value v = minilang::invoke_method(
      obj, "work", {Value::integer(4), Value::integer(2)}, /*external=*/true,
      options);
  EXPECT_EQ(v.as_int(), 42);  // interpreter answered
  EXPECT_GT(fallbacks.value(), before);
}

// ------------------------------------------ optimizer (PSF_MINILANG_OPT)

// Scoped PSF_MINILANG_OPT override; restores the prior value on exit so the
// rest of the suite keeps running under the build's ambient setting.
class OptEnv {
 public:
  explicit OptEnv(const char* value) {
    const char* prior = std::getenv("PSF_MINILANG_OPT");
    had_prior_ = prior != nullptr;
    if (had_prior_) prior_ = prior;
    setenv("PSF_MINILANG_OPT", value, 1);
  }
  ~OptEnv() {
    if (had_prior_) {
      setenv("PSF_MINILANG_OPT", prior_.c_str(), 1);
    } else {
      unsetenv("PSF_MINILANG_OPT");
    }
  }

 private:
  bool had_prior_ = false;
  std::string prior_;
};

// Bodies the optimizer actually transforms: repeated field loads inside one
// expression (field-load CSE), redundant local copies (move forwarding),
// plus branches and calls that must invalidate availability.
std::shared_ptr<ClassRegistry> make_opt_registry() {
  return make_registry(
      "Hotspot",
      {
          {"constructor", {}, "balance = 100; count = 7; acc = 0;"},
          {"fieldExpr", {"n"}, R"(
              var total = 0;
              for (var i = 0; i < n; i = i + 1) {
                total = total + balance * balance + balance
                              - count * count + count;
              }
              acc = total;
              return total;)"},
          {"copies", {"a"}, R"(
              var x = a;
              var y = x;
              var z = y;
              return z + balance + balance + balance;)"},
          {"storeReload", {"v"}, R"(
              balance = v;
              var twice = balance + balance;
              sideEffect();
              return twice + balance;)"},
          {"sideEffect", {}, "balance = balance + 1; return balance;"},
          {"branchy", {"n"}, R"(
              var total = balance + balance;
              if (n > 0) { balance = n; } else { count = n; }
              return total + balance + count;)"},
      },
      {{"balance", Value::integer(0)},
       {"count", Value::integer(0)},
       {"acc", Value::integer(0)}});
}

const std::vector<std::pair<std::string, std::vector<Value>>>& opt_calls() {
  static const std::vector<std::pair<std::string, std::vector<Value>>> calls =
      {{"fieldExpr", {Value::integer(6)}},
       {"copies", {Value::integer(5)}},
       {"storeReload", {Value::integer(40)}},
       {"branchy", {Value::integer(3)}},
       {"branchy", {Value::integer(-3)}},
       {"fieldExpr", {Value::integer(0)}}};
  return calls;
}

TEST(BytecodeDiff, OptimizedAndUnoptimizedTranscriptsAgree) {
  std::string unopt, opt, interp;
  {
    OptEnv off("0");
    unopt = transcript(*make_opt_registry(), "Hotspot", {}, opt_calls(),
                       ExecMode::kBytecode);
    interp = transcript(*make_opt_registry(), "Hotspot", {}, opt_calls(),
                        ExecMode::kInterp);
  }
  {
    OptEnv on("1");
    opt = transcript(*make_opt_registry(), "Hotspot", {}, opt_calls(),
                     ExecMode::kBytecode);
  }
  EXPECT_EQ(unopt, opt);
  EXPECT_EQ(interp, opt);
}

TEST(BytecodeDiff, OptimizedViewsAgreeWithUnoptimized) {
  const std::string xmls[] = {mail::view_xml_member(), mail::view_xml_partner(),
                              mail::view_xml_anonymous(),
                              mail::view_xml_mail_server_cache(),
                              mail::view_xml_client_replica()};
  for (const std::string& xml : xmls) {
    std::string transcripts[2];
    for (int on = 0; on < 2; ++on) {
      OptEnv env(on == 0 ? "0" : "1");
      ClassRegistry registry;
      mail::register_all(registry);
      auto def = views::ViewDefinition::from_xml(xml);
      ASSERT_TRUE(def.ok());
      views::Vig vig(&registry);
      auto cls = vig.generate(def.value());
      ASSERT_TRUE(cls.ok()) << cls.error().message;
      transcripts[on] = transcript(registry, cls.value()->name, {},
                                   zero_arg_calls(*cls.value()),
                                   ExecMode::kBytecode);
    }
    EXPECT_EQ(transcripts[0], transcripts[1]);
  }
}

TEST(BytecodeDiff, OptimizerShrinksCodeAndConservesStepCost) {
  auto compiled_field_expr = [](const char* env) {
    OptEnv guard(env);
    auto registry = make_opt_registry();
    const auto cls = registry->find_class("Hotspot");
    const MethodDef* method = cls->find_method("fieldExpr");
    const minilang::CompiledMethod* code =
        minilang::ensure_compiled(*registry, *cls, *method);
    EXPECT_NE(code, nullptr);
    // Keep the registry alive through the shared compiled slot.
    struct Held {
      std::shared_ptr<ClassRegistry> registry;
      const minilang::CompiledMethod* code;
    };
    return Held{registry, code};
  };
  const auto unopt = compiled_field_expr("0");
  const auto opt = compiled_field_expr("1");
  ASSERT_NE(unopt.code, nullptr);
  ASSERT_NE(opt.code, nullptr);
  EXPECT_LT(opt.code->code.size(), unopt.code->code.size());
  // Every eliminated instruction folded its unit cost into a retained
  // successor, so the static cost total is invariant — the basis of
  // step-limit parity.
  auto total_cost = [](const minilang::CompiledMethod& m) {
    return std::accumulate(
        m.code.begin(), m.code.end(), std::size_t{0},
        [](std::size_t acc, const minilang::Insn& i) { return acc + i.cost; });
  };
  EXPECT_EQ(total_cost(*opt.code), total_cost(*unopt.code));
  EXPECT_EQ(total_cost(*unopt.code), unopt.code->code.size());
}

TEST(BytecodeDiff, StepLimitParityAcrossBudgetSweep) {
  // The observable outcome (value, error text, or "step limit exceeded")
  // must match between optimized and unoptimized bytecode at EVERY budget,
  // not just generous ones — this is what the cost-folding rule guarantees.
  for (std::size_t budget = 1; budget <= 160; ++budget) {
    std::string outcomes[2];
    for (int on = 0; on < 2; ++on) {
      OptEnv env(on == 0 ? "0" : "1");
      auto registry = make_opt_registry();
      InterpOptions options;
      options.exec = ExecMode::kBytecode;
      options.max_steps = budget;
      try {
        auto obj = minilang::instantiate(*registry, "Hotspot", {}, options);
        Value v = minilang::invoke_method(obj, "fieldExpr",
                                          {Value::integer(2)},
                                          /*external=*/true, options);
        outcomes[on] = "ok " + v.to_display_string();
      } catch (const EvalError& e) {
        outcomes[on] = std::string("error ") + e.what();
      }
    }
    EXPECT_EQ(outcomes[0], outcomes[1]) << "budget " << budget;
  }
}

TEST(BytecodeDiff, InlineCacheHitAndGuardMissAgreeWithInterpreter) {
  OptEnv env("1");  // IC slots are allocated by the optimizer
  auto registry = std::make_shared<ClassRegistry>();
  auto add_class = [&](const std::string& name, const std::string& body) {
    auto cls = std::make_shared<ClassDef>();
    cls->name = name;
    MethodDef m;
    m.name = "ping";
    m.source = body;
    auto parsed = minilang::parse_block_source(body);
    ASSERT_TRUE(parsed.ok());
    m.body = std::move(parsed).take();
    cls->methods.push_back(std::move(m));
    registry->register_class(cls);
  };
  add_class("Alpha", "return \"alpha\";");
  add_class("Beta", "return \"beta\";");
  {
    auto cls = std::make_shared<ClassDef>();
    cls->name = "Driver";
    MethodDef m;
    m.name = "relay";
    m.params = {"target"};
    m.source = "return target.ping();";
    auto parsed = minilang::parse_block_source(m.source);
    ASSERT_TRUE(parsed.ok());
    m.body = std::move(parsed).take();
    cls->methods.push_back(std::move(m));
    registry->register_class(cls);
  }

  auto driver = minilang::instantiate(*registry, "Driver");
  auto alpha = minilang::instantiate(*registry, "Alpha");
  auto beta = minilang::instantiate(*registry, "Beta");
  auto& hits = obs::counter("psf.minilang.ic_hits");
  auto& misses = obs::counter("psf.minilang.ic_misses");
  const std::uint64_t hits_before = hits.value();
  const std::uint64_t misses_before = misses.value();

  // The same polymorphic sequence under both engines: fill on Alpha, hit on
  // Alpha, guard-miss on Beta (twice), then a receiver with no method.
  const std::vector<Value> receivers = {
      Value::object(alpha), Value::object(alpha), Value::object(beta),
      Value::object(beta),  Value::object(alpha), Value::integer(9)};
  std::string transcripts[2];
  const ExecMode modes[2] = {ExecMode::kBytecode, ExecMode::kInterp};
  for (int i = 0; i < 2; ++i) {
    std::ostringstream os;
    for (const Value& receiver : receivers) {
      os << call_outcome(driver, "relay", {receiver}, modes[i]) << "\n";
    }
    transcripts[i] = os.str();
  }
  EXPECT_EQ(transcripts[0], transcripts[1]);
  EXPECT_NE(transcripts[0].find("ok string:alpha"), std::string::npos);
  EXPECT_NE(transcripts[0].find("ok string:beta"), std::string::npos);
  // The bytecode pass filled the cache on Alpha, then hit it at least once
  // and guard-missed on every Beta dispatch.
  EXPECT_GT(hits.value(), hits_before);
  EXPECT_GT(misses.value(), misses_before);
}

TEST(BytecodeDiff, VigPrecompilesViewMethods) {
  if (minilang::default_exec_mode() != ExecMode::kBytecode) {
    GTEST_SKIP() << "PSF_MINILANG_EXEC=interp disables generation-time "
                    "compilation";
  }
  ClassRegistry registry;
  mail::register_all(registry);
  views::Vig vig(&registry);
  auto def = views::ViewDefinition::from_xml(mail::view_xml_member());
  ASSERT_TRUE(def.ok());
  auto cls = vig.generate(def.value());
  ASSERT_TRUE(cls.ok());
  EXPECT_GT(vig.stats().methods_compiled, 0u);
  EXPECT_EQ(vig.stats().compile_fallbacks, 0u)
      << "an in-tree view method failed to compile";
}

}  // namespace
}  // namespace psf
