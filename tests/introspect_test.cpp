// Remote introspection served through a view (ISSUE 4 tentpole, part c):
// the Introspect component is a normal PSF service, so who sees which slice
// of the observability surface is decided by the same ACL -> view -> VIG ->
// Switchboard machinery as any other component. Admin.Monitor gets the full
// surface, Admin.Viewer a metrics+health-only view (the deep methods do not
// exist on its generated class), everyone else is denied by the ACL.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "mail/scenario.hpp"
#include "obs/journal.hpp"
#include "obs/trace.hpp"
#include "psf/introspect.hpp"

namespace psf::framework {
namespace {

using mail::Scenario;
using minilang::EvalError;
using minilang::Value;

// Scenario + installed introspection service + a little real traffic so the
// journal and span surfaces have content.
struct World {
  Scenario s = mail::build_scenario();
  Psf& psf = *s.psf;
  IntrospectOptions options;

  World() {
    options.node = Scenario::kNyServer;
    auto installed = install_introspection(psf, options);
    EXPECT_TRUE(installed.ok())
        << (installed.ok() ? "" : installed.error().message);
    auto alice = psf.request(s.request_for(s.alice, Scenario::kNyPc));
    EXPECT_TRUE(alice.ok());
    if (alice.ok()) {
      alice.value().view->call("getPhone", {Value::string("alice")});
      alice.value().connection->heartbeat();
    }
  }

  ClientRequest request_as(const std::string& who, const std::string& role) {
    Guard* admin = psf.guard(options.domain);
    ClientRequest request;
    request.client_node = Scenario::kNyPc;
    request.service = options.service_name;
    request.identity = admin->create_principal(who);
    if (!role.empty()) {
      request.credentials = {admin->grant(
          drbac::Principal::of_entity(request.identity), role)};
    }
    return request;
  }
};

TEST(Introspect, MonitorGetsFullSurfaceOverSwitchboard) {
  World w;
  auto session = w.psf.request(w.request_as("Operator", "Monitor"));
  ASSERT_TRUE(session.ok()) << session.error().message;
  EXPECT_EQ(session.value().view_name, "ViewIntrospect_Admin");
  // Genuinely remote: the view runs on the client node and reaches the
  // origin over an authenticated channel.
  EXPECT_EQ(session.value().provider_node, Scenario::kNyServer);
  EXPECT_NE(session.value().connection, nullptr);
  auto& view = *session.value().view;

  const std::string metrics = view.call("metrics_snapshot", {}).as_string();
  EXPECT_NE(metrics.find("metrics-snapshot-v1"), std::string::npos);
  EXPECT_NE(metrics.find("psf.obs.journal.events"), std::string::npos);

  const std::string health = view.call("health", {}).as_string();
  EXPECT_NE(health.find("\"status\""), std::string::npos);
  EXPECT_NE(health.find("obs.journal.drop-rate"), std::string::npos);

  const std::string tail =
      view.call("journal_tail", {Value::integer(200)}).as_string();
  EXPECT_NE(tail.find("journal-v1"), std::string::npos);
  // The workload journaled real events: at minimum VIG generations and the
  // Switchboard establishes that carried this very query.
  EXPECT_NE(tail.find("vig-generate"), std::string::npos) << tail;
  EXPECT_NE(tail.find("establish"), std::string::npos);
  EXPECT_EQ(tail.find("\"event_count\": 0"), std::string::npos);
}

TEST(Introspect, JournalTailBoundsTheWindow) {
  World w;
  auto session = w.psf.request(w.request_as("Operator", "Monitor"));
  ASSERT_TRUE(session.ok());
  const std::string three = session.value()
                                .view->call("journal_tail", {Value::integer(3)})
                                .as_string();
  EXPECT_NE(three.find("\"event_count\": 3"), std::string::npos) << three;
  // A negative n clamps to zero rather than erroring across the wire.
  const std::string none = session.value()
                               .view->call("journal_tail", {Value::integer(-5)})
                               .as_string();
  EXPECT_NE(none.find("\"event_count\": 0"), std::string::npos);
}

TEST(Introspect, SpansForTraceFiltersThroughTheView) {
  World w;
  auto session = w.psf.request(w.request_as("Operator", "Monitor"));
  ASSERT_TRUE(session.ok());
  auto& view = *session.value().view;

  // Find a real cross-host trace, then ask the remote surface for it.
  obs::TraceId trace = 0;
  for (const auto& span : obs::SpanCollector::instance().snapshot()) {
    if (span.name == "switchboard.dispatch") trace = span.trace_id;
  }
  ASSERT_NE(trace, 0u);
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(trace));
  const std::string spans =
      view.call("spans_for_trace", {Value::string(hex)}).as_string();
  EXPECT_NE(spans.find("spans-v1"), std::string::npos);
  EXPECT_EQ(spans.find("\"span_count\": 0"), std::string::npos) << spans;

  // Garbage ids parse to "no trace" and return an empty, well-formed set.
  const std::string empty =
      view.call("spans_for_trace", {Value::string("not-hex!")}).as_string();
  EXPECT_NE(empty.find("\"span_count\": 0"), std::string::npos);
}

TEST(Introspect, ViewerViewOmitsTheDeepMethodsEntirely) {
  World w;
  auto session = w.psf.request(w.request_as("Auditor", "Viewer"));
  ASSERT_TRUE(session.ok()) << session.error().message;
  EXPECT_EQ(session.value().view_name, "ViewIntrospect_Basic");
  auto& view = *session.value().view;

  // The permitted half works...
  EXPECT_NE(view.call("metrics_snapshot", {}).as_string().find(
                "metrics-snapshot-v1"),
            std::string::npos);
  EXPECT_NE(view.call("health", {}).as_string().find("\"status\""),
            std::string::npos);
  // ...and the deep half is not attenuated-but-present, it is absent: the
  // generated class never had the methods, so there is nothing to bypass.
  EXPECT_THROW(view.call("journal_tail", {Value::integer(5)}), EvalError);
  EXPECT_THROW(view.call("spans_for_trace", {Value::string("0")}), EvalError);
  EXPECT_THROW(view.call("slo_status", {}), EvalError);
  EXPECT_THROW(view.call("lock_contention", {}), EvalError);
  EXPECT_THROW(view.call("profile_status", {}), EvalError);
  EXPECT_THROW(view.call("profile_dump", {}), EvalError);
}

TEST(Introspect, MonitorSeesSloAndContentionSurfaces) {
  World w;
  auto session = w.psf.request(w.request_as("Operator", "Monitor"));
  ASSERT_TRUE(session.ok()) << session.error().message;
  auto& view = *session.value().view;

  // install_introspection declared the builtin SLO triple; the workload has
  // already pushed secure RPCs through psf.switchboard.rpc_us.
  const std::string slos = view.call("slo_status", {}).as_string();
  EXPECT_NE(slos.find("\"version\":\"slo-v1\""), std::string::npos);
  EXPECT_NE(slos.find("\"name\":\"switchboard.rpc\""), std::string::npos);
  EXPECT_NE(slos.find("\"name\":\"drbac.prove\""), std::string::npos);
  EXPECT_NE(slos.find("\"name\":\"views.sync\""), std::string::npos);

  // The SLO checks landed on the health plane too.
  const std::string health = view.call("health", {}).as_string();
  EXPECT_NE(health.find("slo.switchboard.rpc"), std::string::npos);

  const std::string contention = view.call("lock_contention", {}).as_string();
  EXPECT_NE(contention.find("\"version\":\"contention-v1\""),
            std::string::npos);

  // The profiler surfaces ride the same deep interface: a status document
  // and a speedscope dump (empty profile when nothing is registered — the
  // formatters always render valid documents).
  const std::string profile = view.call("profile_status", {}).as_string();
  EXPECT_NE(profile.find("\"version\":\"profile-v1\""), std::string::npos);
  const std::string dump = view.call("profile_dump", {}).as_string();
  EXPECT_NE(dump.find("speedscope.app/file-format-schema.json"),
            std::string::npos);
}

TEST(Introspect, UncredentialedCallerIsDeniedByTheAcl) {
  World w;
  auto session = w.psf.request(w.request_as("Nobody", ""));
  ASSERT_FALSE(session.ok());
  EXPECT_NE(session.error().message.find("no access rule"), std::string::npos)
      << session.error().message;

  // A mail-domain credential is no better: the rules name Admin roles.
  ClientRequest request = w.s.request_for(w.s.alice, Scenario::kNyPc);
  request.service = w.options.service_name;
  auto alice = w.psf.request(request);
  EXPECT_FALSE(alice.ok());
}

TEST(Introspect, InstallValidatesOptionsAndIsRepeatable) {
  Scenario s = mail::build_scenario();
  IntrospectOptions bad;
  bad.node = "";
  EXPECT_FALSE(install_introspection(*s.psf, bad).ok());

  IntrospectOptions good;
  good.node = Scenario::kNyServer;
  ASSERT_TRUE(install_introspection(*s.psf, good).ok());
  // Re-defining the same service must fail cleanly, not corrupt the first.
  EXPECT_FALSE(install_introspection(*s.psf, good).ok());
  auto session = (*s.psf).request([&] {
    Guard* admin = s.psf->guard(good.domain);
    ClientRequest r;
    r.client_node = Scenario::kNyPc;
    r.service = good.service_name;
    r.identity = admin->create_principal("Op2");
    r.credentials = {
        admin->grant(drbac::Principal::of_entity(r.identity), "Monitor")};
    return r;
  }());
  EXPECT_TRUE(session.ok()) << session.error().message;
}

}  // namespace
}  // namespace psf::framework
