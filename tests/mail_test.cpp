#include <gtest/gtest.h>

#include "mail/components.hpp"
#include "mail/scenario.hpp"
#include "minilang/interp.hpp"
#include "views/cache.hpp"
#include "views/vig.hpp"

namespace psf::mail {
namespace {

using minilang::ClassRegistry;
using minilang::EvalError;
using minilang::Value;

struct MailWorld {
  ClassRegistry registry;
  MailWorld() { register_all(registry); }
};

// ------------------------------------------------------------- MailClient

TEST(MailClient, AccountDirectory) {
  MailWorld w;
  auto client = minilang::instantiate(w.registry, "MailClient");
  client->call("addAccount", {Value::string("alice"), Value::string("555"),
                              Value::string("a@x")});
  EXPECT_EQ(client->call("getPhone", {Value::string("alice")}).as_string(),
            "555");
  EXPECT_EQ(client->call("getEmail", {Value::string("alice")}).as_string(),
            "a@x");
}

TEST(MailClient, UnknownAccountThrows) {
  MailWorld w;
  auto client = minilang::instantiate(w.registry, "MailClient");
  EXPECT_THROW(client->call("getPhone", {Value::string("ghost")}), EvalError);
}

TEST(MailClient, FindAccountIsPrivate) {
  MailWorld w;
  auto client = minilang::instantiate(w.registry, "MailClient");
  EXPECT_THROW(client->call("findAccount", {Value::string("alice")}),
               EvalError);
}

TEST(MailClient, MessageLifecycle) {
  MailWorld w;
  auto client = minilang::instantiate(w.registry, "MailClient");
  client->call("deliver", {make_message("bob", "alice", "s1", "b1")});
  client->call("deliver", {make_message("eve", "alice", "s2", "b2")});
  const Value received = client->call("receiveMessages", {});
  EXPECT_EQ(received.as_list()->size(), 2u);
  // Receiving drains the inbox.
  EXPECT_EQ(client->call("receiveMessages", {}).as_list()->size(), 0u);
}

TEST(MailClient, NotesAndMeetings) {
  MailWorld w;
  auto client = minilang::instantiate(w.registry, "MailClient");
  client->call("addNote", {Value::string("n")});
  EXPECT_TRUE(client->call("addMeeting", {Value::string("alice")}).as_bool());
  EXPECT_EQ(client->get_field("notes").as_list()->size(), 1u);
  EXPECT_EQ(client->get_field("meetings").as_list()->size(), 1u);
}

// ------------------------------------------------------------- MailServer

TEST(MailServer, RoutesMailToMailboxes) {
  MailWorld w;
  auto server = minilang::instantiate(w.registry, "MailServer");
  server->call("registerAccount", {Value::string("alice"), Value::string("1"),
                                   Value::string("a@x")});
  server->call("registerAccount", {Value::string("bob"), Value::string("2"),
                                   Value::string("b@x")});
  EXPECT_TRUE(
      server->call("sendMail", {make_message("bob", "alice", "s", "b")})
          .as_bool());
  EXPECT_EQ(server->call("countPending", {Value::string("alice")}).as_int(), 1);
  EXPECT_EQ(server->call("countPending", {Value::string("bob")}).as_int(), 0);
  const Value fetched = server->call("fetchMail", {Value::string("alice")});
  ASSERT_EQ(fetched.as_list()->size(), 1u);
  EXPECT_EQ((*fetched.as_list())[0].as_map()->at("subject").as_string(), "s");
  EXPECT_EQ(server->call("countPending", {Value::string("alice")}).as_int(), 0);
}

TEST(MailServer, RejectsMailToUnknownRecipient) {
  MailWorld w;
  auto server = minilang::instantiate(w.registry, "MailServer");
  EXPECT_FALSE(
      server->call("sendMail", {make_message("x", "ghost", "s", "b")})
          .as_bool());
}

TEST(MailServer, DirectoryReturnsEmptyForUnknown) {
  MailWorld w;
  auto server = minilang::instantiate(w.registry, "MailServer");
  EXPECT_EQ(server->call("getPhone", {Value::string("ghost")}).as_string(), "");
}

// ------------------------------------------------- Encryptor / Decryptor

TEST(Privacy, EncryptDecryptRoundTrip) {
  MailWorld w;
  const Value key = Value::bytes(util::to_bytes("pair key"));
  auto enc = minilang::instantiate(w.registry, "Encryptor", {key});
  auto dec = minilang::instantiate(w.registry, "Decryptor", {key});
  const Value plain = Value::bytes(util::to_bytes("the body of the mail"));
  const Value cipher = enc->call("transform", {plain});
  EXPECT_NE(cipher.as_bytes(), plain.as_bytes());
  EXPECT_EQ(dec->call("transform", {cipher}).as_bytes(), plain.as_bytes());
}

TEST(Privacy, DifferentKeysDoNotDecrypt) {
  MailWorld w;
  auto enc = minilang::instantiate(w.registry, "Encryptor",
                                   {Value::bytes(util::to_bytes("key-1"))});
  auto dec = minilang::instantiate(w.registry, "Decryptor",
                                   {Value::bytes(util::to_bytes("key-2"))});
  const Value plain = Value::bytes(util::to_bytes("secret"));
  const Value garbled = dec->call("transform", {enc->call("transform", {plain})});
  EXPECT_NE(garbled.as_bytes(), plain.as_bytes());
}

TEST(Privacy, UninitializedKeyThrows) {
  MailWorld w;
  auto cls = w.registry.find_class("Encryptor");
  auto enc = std::make_shared<minilang::Instance>(cls, &w.registry);
  EXPECT_THROW(enc->call("transform", {Value::bytes({1, 2})}), EvalError);
}

// --------------------------------------------------------- ViewMailServer

TEST(ViewMailServer, CacheServesReadsAndWritesThrough) {
  MailWorld w;
  views::Vig vig(&w.registry);
  auto def = views::ViewDefinition::from_xml(view_xml_mail_server_cache());
  ASSERT_TRUE(def.ok()) << def.error().message;
  auto cls = vig.generate(def.value());
  ASSERT_TRUE(cls.ok()) << cls.error().message;

  auto origin = minilang::instantiate(w.registry, "MailServer");
  origin->call("registerAccount", {Value::string("alice"), Value::string("1"),
                                   Value::string("a@x")});
  auto cache = minilang::instantiate(w.registry, "ViewMailServer");
  views::attach_cache_manager(cache, Value::object(origin));

  // Read through the cache: pulled from the origin.
  EXPECT_EQ(cache->call("getPhone", {Value::string("alice")}).as_string(), "1");
  // Write through the cache: lands on the origin.
  EXPECT_TRUE(
      cache->call("sendMail", {make_message("bob", "alice", "s", "b")})
          .as_bool());
  EXPECT_EQ(origin->call("countPending", {Value::string("alice")}).as_int(), 1);
  // New registration at the origin becomes visible at the cache.
  origin->call("registerAccount", {Value::string("carol"), Value::string("3"),
                                   Value::string("c@x")});
  EXPECT_EQ(cache->call("getEmail", {Value::string("carol")}).as_string(),
            "c@x");
}

// ---------------------------------------------------------- Scenario

struct ScenarioFixture : ::testing::Test {
  Scenario s = build_scenario();
};

TEST_F(ScenarioFixture, Table2CredentialsMatchPaperRendering) {
  const char* expected[] = {
      "[ Alice -> Comp.NY.Member ] Comp.NY",
      "[ Comp.SD.Member -> Comp.NY.Member ] Comp.NY",
      "[ Comp.SD -> Comp.NY.Partner ' ] Comp.NY",
      "[ Dell.Linux -> Mail.Node ] Mail with Secure={false,true} Trust=(0,10)",
      "[ Dell.SuSe -> Mail.Node ] Mail with Secure={false,true} Trust=(0,7)",
      "[ IBM.Windows -> Mail.Node ] Mail with Secure={false} Trust=(0,1)",
      "[ Comp.NY.PC -> Dell.Linux ] Dell",
      "[ Mail.MailClient -> Comp.NY.Executable ] Comp.NY with CPU=(0,100)",
      "[ Mail.Encryptor -> Comp.NY.Executable ] Comp.NY with CPU=(0,100)",
      "[ Mail.Decryptor -> Comp.NY.Executable ] Comp.NY with CPU=(0,100)",
      "[ Bob -> Comp.SD.Member ] Comp.SD",
      "[ Inc.SE.Member -> Comp.NY.Partner ] Comp.SD",
      "[ Comp.SD.PC -> Dell.SuSe ] Dell",
      "[ Comp.NY.Executable -> Comp.SD.Executable ] Comp.SD with CPU=(0,80)",
      "[ Charlie -> Inc.SE.Member ] Inc.SE",
      "[ Inc.SE.PC -> IBM.Windows ] IBM",
      "[ Comp.NY.Executable -> Inc.SE.Executable ] Inc.SE with CPU=(0,40)",
  };
  for (int i = 1; i <= 17; ++i) {
    EXPECT_EQ(s.cred(i)->display(), expected[i - 1]) << "credential " << i;
    EXPECT_TRUE(s.cred(i)->verify_signature()) << "credential " << i;
  }
}

TEST_F(ScenarioFixture, Table2TypesMatchPaper) {
  using drbac::DelegationType;
  // (3) is the only assignment; (12), (14), (17), (2)... check a few.
  EXPECT_EQ(s.cred(3)->type(), DelegationType::kAssignment);
  EXPECT_EQ(s.cred(1)->type(), DelegationType::kSelfCertifying);
  EXPECT_EQ(s.cred(12)->type(), DelegationType::kThirdParty);
  EXPECT_EQ(s.cred(14)->type(), DelegationType::kSelfCertifying);
}

TEST_F(ScenarioFixture, NodeAuthorizationMapsPlatformsToPolicy) {
  drbac::Engine engine(&s.psf->repository());
  drbac::ProveOptions secure_node;
  secure_node.required = {
      {"Secure", drbac::Attribute::make_set("Secure", {"true"})}};
  // sd-pc chains PC -> Dell.SuSe -> Mail.Node (credentials 13 + 5).
  auto sd = engine.prove(s.psf->node(Scenario::kSdPc)->principal(),
                         s.mail->role("Node"), 0, secure_node);
  EXPECT_TRUE(sd.ok()) << sd.error().message;
  // se-pc chains to IBM.Windows whose Secure={false}: must fail.
  auto se = engine.prove(s.psf->node(Scenario::kSePc)->principal(),
                         s.mail->role("Node"), 0, secure_node);
  EXPECT_FALSE(se.ok());
}

TEST_F(ScenarioFixture, ComponentAuthorizationAttenuatesCpuPerSite) {
  drbac::Engine engine(&s.psf->repository());
  auto sd = engine.prove(s.cred(8)->subject, s.sd->role("Executable"), 0);
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd.value().effective_attributes.at("CPU").hi, 80);
  auto se = engine.prove(s.cred(8)->subject, s.se->role("Executable"), 0);
  ASSERT_TRUE(se.ok());
  EXPECT_EQ(se.value().effective_attributes.at("CPU").hi, 40);
}

TEST_F(ScenarioFixture, WalletsAuthorizeTheRightViews) {
  auto alice = s.ny->select_view(drbac::Principal::of_entity(s.alice), 0);
  EXPECT_EQ(alice.value().view_name, "ViewMailClient_Member");
  auto bob = s.ny->select_view(drbac::Principal::of_entity(s.bob), 0);
  EXPECT_EQ(bob.value().view_name, "ViewMailClient_Member");
  auto charlie = s.ny->select_view(drbac::Principal::of_entity(s.charlie), 0);
  EXPECT_EQ(charlie.value().view_name, "ViewMailClient_Partner");
}

TEST_F(ScenarioFixture, SecureWanDisablesCipherDeployment) {
  // With physically secure WAN links, privacy needs no encryptor pair.
  Scenario secure_world = build_scenario({200, 40, /*wan_secure=*/true});
  framework::QoS qos;
  qos.min_bandwidth_kbps = 1000;
  qos.privacy = true;
  auto session = secure_world.psf->request(
      secure_world.request_for(secure_world.bob, Scenario::kSdPc, qos));
  ASSERT_TRUE(session.ok()) << session.error().message;
  EXPECT_TRUE(session.value().plan.uses_replica);
  EXPECT_FALSE(session.value().plan.uses_ciphers);
}

TEST_F(ScenarioFixture, FastWanServesFromOrigin) {
  Scenario fast_world = build_scenario({100'000, 2, true});
  framework::QoS qos;
  qos.min_bandwidth_kbps = 1000;
  auto session = fast_world.psf->request(
      fast_world.request_for(fast_world.bob, Scenario::kSdPc, qos));
  ASSERT_TRUE(session.ok()) << session.error().message;
  EXPECT_EQ(session.value().provider_node, Scenario::kNyServer);
  EXPECT_FALSE(session.value().plan.uses_replica);
}

TEST_F(ScenarioFixture, EndToEndPrivateMailDelivery) {
  framework::QoS qos;
  qos.min_bandwidth_kbps = 1000;
  qos.privacy = true;
  auto session = s.psf->request(s.request_for(s.bob, Scenario::kSdPc, qos));
  ASSERT_TRUE(session.ok()) << session.error().message;
  ASSERT_TRUE(session.value().plan.uses_ciphers);
  session.value().view->call(
      "sendMessage", {make_message("bob", "alice", "secret", "classified")});
  auto origin = s.psf->origin_instance("mail");
  ASSERT_EQ(origin->get_field("outbox").as_list()->size(), 1u);
  const auto& message = (*origin->get_field("outbox").as_list())[0];
  // Plaintext inside the endpoints despite ciphertext on the wire.
  EXPECT_EQ(message.as_map()->at("body").as_string(), "classified");
}

TEST_F(ScenarioFixture, MailboxServiceDeploysViewMailServerCache) {
  // §2.2: the view mail server is replicated as a cache close to the
  // client. Bob's session gets a ViewMailServer on (or near) sd-pc.
  framework::ClientRequest request = s.request_for(s.bob, Scenario::kSdPc);
  request.service = "mailbox";
  auto session = s.psf->request(request);
  ASSERT_TRUE(session.ok()) << session.error().message;
  EXPECT_EQ(session.value().view_name, "ViewMailServer");

  // Bob sends mail through his cache view; it lands in the origin
  // MailServer's mailbox for alice.
  EXPECT_TRUE(session.value()
                  .view
                  ->call("sendMail",
                         {make_message("bob", "alice", "cache", "hello")})
                  .as_bool());
  auto origin = s.psf->origin_instance("mailbox");
  EXPECT_EQ(origin->call("countPending", {Value::string("alice")}).as_int(),
            1);

  // Alice fetches through her own session at ny-pc.
  framework::ClientRequest alice_request =
      s.request_for(s.alice, Scenario::kNyPc);
  alice_request.service = "mailbox";
  auto alice_session = s.psf->request(alice_request);
  ASSERT_TRUE(alice_session.ok()) << alice_session.error().message;
  const Value fetched =
      alice_session.value().view->call("fetchMail", {Value::string("alice")});
  ASSERT_EQ(fetched.as_list()->size(), 1u);
  EXPECT_EQ((*fetched.as_list())[0].as_map()->at("subject").as_string(),
            "cache");
}

TEST_F(ScenarioFixture, MailboxServiceDeniesStrangers) {
  drbac::Entity eve = drbac::Entity::create("Eve", s.psf->rng());
  framework::ClientRequest request;
  request.identity = eve;
  request.client_node = Scenario::kSePc;
  request.service = "mailbox";  // no default view configured
  auto session = s.psf->request(request);
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.error().code, "access-denied");
}

TEST_F(ScenarioFixture, PerServiceAclsAreIndependent) {
  // The same client gets different views from different services.
  auto mail_session = s.psf->request(s.request_for(s.bob, Scenario::kSdPc));
  ASSERT_TRUE(mail_session.ok());
  EXPECT_EQ(mail_session.value().view_name, "ViewMailClient_Member");
  framework::ClientRequest request = s.request_for(s.bob, Scenario::kSdPc);
  request.service = "mailbox";
  auto box_session = s.psf->request(request);
  ASSERT_TRUE(box_session.ok());
  EXPECT_EQ(box_session.value().view_name, "ViewMailServer");
}

TEST_F(ScenarioFixture, CrossUserMailThroughSharedOrigin) {
  // Alice and Charlie both get sessions over the same origin object: an
  // account registered at the origin becomes visible through both views.
  auto alice = s.psf->request(s.request_for(s.alice, Scenario::kNyPc));
  ASSERT_TRUE(alice.ok());
  auto charlie = s.psf->request(s.request_for(s.charlie, Scenario::kSePc));
  ASSERT_TRUE(charlie.ok());
  s.psf->origin_instance("mail")->call(
      "addAccount",
      {Value::string("dave"), Value::string("999"), Value::string("d@x")});
  // Alice's member view is local with pull coherence from the origin.
  EXPECT_EQ(
      alice.value().view->call("getPhone", {Value::string("dave")}).as_string(),
      "999");
  // Charlie's partner view routes AddressI over the switchboard channel.
  EXPECT_EQ(charlie.value()
                .view->call("getPhone", {Value::string("dave")})
                .as_string(),
            "999");
}

}  // namespace
}  // namespace psf::mail
