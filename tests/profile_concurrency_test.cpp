// Profiler concurrency torture (ISSUE 9 satellite): wraparound-style ring
// torture with concurrent report() drains (journal_concurrency_test
// precedent), start/stop/reconfigure races against live SIGPROF timers, and
// sampling interleaved with journal drains. Run under TSan by the sanitizer
// CI matrix; the assertions here are sanity floors — the real check is the
// absence of data-race reports.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/journal.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace profile = psf::obs::profile;
namespace journal = psf::obs::journal;
using psf::obs::ScopedSpan;

namespace {

/// Every ring slot a drain returns must be internally consistent: rooted at
/// a thread frame, within depth bounds, positive count.
void expect_sane(const profile::Report& report) {
  for (const auto& entry : report.entries) {
    ASSERT_FALSE(entry.frames.empty());
    EXPECT_EQ(entry.frames[0].rfind("thread:", 0), 0u)
        << "unrooted stack: " << entry.frames[0];
    EXPECT_LE(entry.frames.size(), 1 + profile::kMaxFrames);
    EXPECT_GT(entry.count, 0u);
    for (const auto& frame : entry.frames) {
      EXPECT_FALSE(frame.empty());
    }
  }
}

}  // namespace

// Writers lap the 2048-slot ring dozens of times while drainers fold it.
// The per-slot seqlock must discard slots overwritten mid-copy rather than
// return them torn (a torn slot shows up as a garbage frame pointer, which
// the sanity walk or ASan catches).
TEST(ProfileConcurrency, WraparoundTortureWithConcurrentDrains) {
  if (!profile::register_thread("torture-main")) {
    GTEST_SKIP() << "profiler compiled out";
  }
  profile::clear();
  constexpr int kWriters = 4;
  constexpr std::uint64_t kSamplesPerWriter = 50'000;  // ~24 ring laps each

  const std::uint64_t samples_before = profile::report().samples;
  std::atomic<int> writers_done{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([w, &writers_done] {
      const std::string name = "torture-" + std::to_string(w);
      ASSERT_TRUE(profile::register_thread(name.c_str()));
      for (std::uint64_t i = 0; i < kSamplesPerWriter; ++i) {
        ScopedSpan outer("torture.outer");
        if ((i & 1) != 0) {
          ScopedSpan inner("torture.inner");
          profile::sample_current_thread();
        } else {
          profile::sample_current_thread();
        }
      }
      profile::unregister_thread();
      writers_done.fetch_add(1);
    });
  }
  // Two drainers fold the rings continuously while the writers lap them.
  std::atomic<std::uint64_t> drains{0};
  for (int d = 0; d < 2; ++d) {
    threads.emplace_back([&writers_done, &drains] {
      while (writers_done.load() < kWriters) {
        const profile::Report report = profile::report();
        expect_sane(report);
        profile::to_folded(report);  // exercise the formatter too
        drains.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();

  const profile::Report final_report = profile::report();
  expect_sane(final_report);
  EXPECT_EQ(final_report.samples - samples_before,
            kWriters * kSamplesPerWriter + 0u);
  EXPECT_GT(drains.load(), 0u);
}

// start/stop/start with different intervals while registered threads burn
// CPU inside spans: the timers rearm/disarm under the control mutex while
// SIGPROF handlers race the reconfiguration, and report() races both.
TEST(ProfileConcurrency, StartStopReconfigureRaceUnderLoad) {
  if (!profile::register_thread("torture-main")) {
    GTEST_SKIP() << "profiler compiled out";
  }
  profile::clear();
  std::atomic<bool> stop_burning{false};
  std::vector<std::thread> burners;
  for (int b = 0; b < 3; ++b) {
    burners.emplace_back([b, &stop_burning] {
      const std::string name = "burner-" + std::to_string(b);
      ASSERT_TRUE(profile::register_thread(name.c_str()));
      volatile std::uint64_t sink = 0;
      while (!stop_burning.load(std::memory_order_relaxed)) {
        ScopedSpan span("torture.burn");
        for (int i = 0; i < 20'000; ++i) {
          sink = sink + static_cast<std::uint64_t>(i);
        }
      }
      profile::unregister_thread();
    });
  }
  std::thread reporter([&stop_burning] {
    while (!stop_burning.load(std::memory_order_relaxed)) {
      expect_sane(profile::report());
      profile::status_json();
    }
  });

  // Rapid-fire lifecycle churn with changing intervals. Each start() while
  // running is a live retune of every armed timer.
  const std::uint64_t intervals[] = {500, 250, 1000, 125};
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(profile::start({.interval_us = intervals[i % 4]}));
    EXPECT_EQ(profile::interval_us(), intervals[i % 4]);
    if (i % 3 == 0) profile::stop();
  }
  profile::stop();
  EXPECT_FALSE(profile::running());

  stop_burning.store(true);
  for (auto& t : burners) t.join();
  reporter.join();
  expect_sane(profile::report());
}

// The journal's per-thread rings and the profiler's per-thread rings drain
// through different seqlock implementations on the same threads; sampling
// while journal writers emit and journal drainers merge must not deadlock
// or race (SIGPROF can land inside journal::emit in production).
TEST(ProfileConcurrency, SamplingDuringJournalDrain) {
  if (!profile::register_thread("torture-main")) {
    GTEST_SKIP() << "profiler compiled out";
  }
  profile::clear();
  journal::reset();
  constexpr int kWriters = 3;
  constexpr std::uint64_t kIters = 20'000;

  ASSERT_TRUE(profile::start({.interval_us = 500}));
  std::atomic<int> writers_done{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([w, &writers_done] {
      const std::string name = "mixed-" + std::to_string(w);
      ASSERT_TRUE(profile::register_thread(name.c_str()));
      for (std::uint64_t i = 0; i < kIters; ++i) {
        ScopedSpan span("torture.mixed");
        journal::emit(journal::Subsystem::kObs, journal::kObLockContended,
                      journal::tag("torture.site"), 1, i);
        profile::sample_current_thread();
      }
      profile::unregister_thread();
      writers_done.fetch_add(1);
    });
  }
  // One journal drainer, one profile drainer, both racing the writers and
  // the armed SIGPROF timers.
  threads.emplace_back([&writers_done] {
    while (writers_done.load() < kWriters) {
      const auto events = journal::drain();
      for (const auto& e : events) {
        EXPECT_LE(e.subsystem, 4u);
      }
    }
  });
  threads.emplace_back([&writers_done] {
    while (writers_done.load() < kWriters) {
      expect_sane(profile::report());
    }
  });
  for (auto& t : threads) t.join();
  profile::stop();

  EXPECT_GE(journal::emitted(), kWriters * kIters);
  const profile::Report report = profile::report();
  expect_sane(report);
  // Synchronous samples all landed (SIGPROF overlap drops are counted, not
  // corrupted — and never exceed the timer tick budget of the run).
  EXPECT_GE(report.samples, kWriters * kIters);
}
