#include <gtest/gtest.h>

#include "drbac/attribute.hpp"
#include "drbac/credential.hpp"
#include "drbac/engine.hpp"
#include "drbac/entity.hpp"
#include "drbac/repository.hpp"
#include "util/rng.hpp"

namespace psf::drbac {
namespace {

using util::SimTime;

// -------------------------------------------------------------- Attributes

TEST(Attribute, ParseRange) {
  auto a = parse_attribute("Trust=(0,10)");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->kind, Attribute::Kind::kRange);
  EXPECT_EQ(a->lo, 0);
  EXPECT_EQ(a->hi, 10);
  EXPECT_EQ(a->to_string(), "Trust=(0,10)");
}

TEST(Attribute, ParseSet) {
  auto a = parse_attribute("Secure={true,false}");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->kind, Attribute::Kind::kSet);
  EXPECT_EQ(a->set_values.size(), 2u);
  EXPECT_EQ(a->to_string(), "Secure={false,true}");  // set order
}

TEST(Attribute, ParseScalarAsCap) {
  auto a = parse_attribute("CPU=100");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->kind, Attribute::Kind::kRange);
  EXPECT_EQ(a->lo, 0);
  EXPECT_EQ(a->hi, 100);
}

TEST(Attribute, ParseWithSpaces) {
  auto a = parse_attribute(" Trust = (3, 7) ");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->lo, 3);
  EXPECT_EQ(a->hi, 7);
}

TEST(Attribute, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_attribute("NoEquals").has_value());
  EXPECT_FALSE(parse_attribute("=5").has_value());
  EXPECT_FALSE(parse_attribute("X=").has_value());
  EXPECT_FALSE(parse_attribute("X={}").has_value());
  EXPECT_FALSE(parse_attribute("X=(5)").has_value());
  EXPECT_FALSE(parse_attribute("X=(9,2)").has_value());  // inverted range
  EXPECT_FALSE(parse_attribute("X=12abc").has_value());
}

TEST(Attribute, IntersectRanges) {
  auto r = intersect(Attribute::make_range("T", 0, 10),
                     Attribute::make_range("T", 5, 20));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->lo, 5);
  EXPECT_EQ(r->hi, 10);
}

TEST(Attribute, IntersectDisjointRangesEmpty) {
  EXPECT_FALSE(intersect(Attribute::make_range("T", 0, 3),
                         Attribute::make_range("T", 5, 9))
                   .has_value());
}

TEST(Attribute, IntersectSets) {
  auto r = intersect(Attribute::make_set("S", {"a", "b", "c"}),
                     Attribute::make_set("S", {"b", "c", "d"}));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->set_values, (std::set<std::string>{"b", "c"}));
}

TEST(Attribute, IntersectMismatchedNamesOrKinds) {
  EXPECT_FALSE(intersect(Attribute::make_range("A", 0, 1),
                         Attribute::make_range("B", 0, 1))
                   .has_value());
  EXPECT_FALSE(intersect(Attribute::make_range("A", 0, 1),
                         Attribute::make_set("A", {"x"}))
                   .has_value());
}

TEST(Attribute, AttenuateKeepsDisjointNames) {
  AttributeMap chain{{"CPU", Attribute::make_cap("CPU", 100)}};
  AttributeMap next{{"Trust", Attribute::make_range("Trust", 0, 5)}};
  auto out = attenuate(chain, next);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->size(), 2u);
}

TEST(Attribute, AttenuateNarrowsCommonNames) {
  // Paper Table 2: Comp.NY.Executable CPU=100 chained through
  // Comp.SD.Executable CPU=80 yields an effective cap of 80.
  AttributeMap chain{{"CPU", Attribute::make_cap("CPU", 100)}};
  AttributeMap next{{"CPU", Attribute::make_cap("CPU", 80)}};
  auto out = attenuate(chain, next);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->at("CPU").hi, 80);
}

TEST(Attribute, AttenuateEmptyIntersectionFails) {
  AttributeMap chain{{"S", Attribute::make_set("S", {"a"})}};
  AttributeMap next{{"S", Attribute::make_set("S", {"b"})}};
  EXPECT_FALSE(attenuate(chain, next).has_value());
}

TEST(Attribute, SatisfiesSubset) {
  AttributeMap granted{{"Secure", Attribute::make_set("Secure", {"true", "false"})},
                       {"Trust", Attribute::make_range("Trust", 0, 10)}};
  AttributeMap required{{"Secure", Attribute::make_set("Secure", {"true"})},
                        {"Trust", Attribute::make_range("Trust", 5, 5)}};
  EXPECT_TRUE(satisfies(granted, required));
}

TEST(Attribute, SatisfiesFailsOnMissingAttr) {
  AttributeMap granted{};
  AttributeMap required{{"Secure", Attribute::make_set("Secure", {"true"})}};
  EXPECT_FALSE(satisfies(granted, required));
}

TEST(Attribute, SatisfiesFailsOnNarrowGrant) {
  AttributeMap granted{{"Trust", Attribute::make_range("Trust", 0, 1)}};
  AttributeMap required{{"Trust", Attribute::make_range("Trust", 5, 5)}};
  EXPECT_FALSE(satisfies(granted, required));
}

TEST(Attribute, EmptyRequirementAlwaysSatisfied) {
  EXPECT_TRUE(satisfies({}, {}));
}

// -------------------------------------------------------------- Credential

struct World {
  util::Rng rng{42};
  Entity comp_ny = Entity::create("Comp.NY", rng);
  Entity comp_sd = Entity::create("Comp.SD", rng);
  Entity inc_se = Entity::create("Inc.SE", rng);
  Entity mail = Entity::create("Mail", rng);
  Entity dell = Entity::create("Dell", rng);
  Entity ibm = Entity::create("IBM", rng);
  Entity alice = Entity::create("Alice", rng);
  Entity bob = Entity::create("Bob", rng);
  Entity charlie = Entity::create("Charlie", rng);
  Repository repo;

  DelegationPtr add(const Entity& issuer, const Principal& subject,
                    const RoleRef& target, AttributeMap attrs = {},
                    bool assignment = false, SimTime expires = 0) {
    auto d = issue(issuer, subject, target, std::move(attrs), assignment,
                   /*issued_at=*/0, expires, repo.next_serial());
    repo.add(d);
    return d;
  }
};

TEST(Credential, SignatureVerifies) {
  World w;
  auto d = issue(w.comp_ny, Principal::of_entity(w.alice),
                 role_of(w.comp_ny, "Member"), {}, false, 0, 0, 1);
  EXPECT_TRUE(d->verify_signature());
}

TEST(Credential, TamperedPayloadFailsVerification) {
  World w;
  auto d = issue(w.comp_ny, Principal::of_entity(w.alice),
                 role_of(w.comp_ny, "Member"), {}, false, 0, 0, 1);
  Delegation tampered = *d;
  tampered.subject = Principal::of_entity(w.bob);  // swap the subject
  EXPECT_FALSE(tampered.verify_signature());
}

TEST(Credential, TamperedAttributesFailVerification) {
  World w;
  auto d = issue(w.comp_sd, Principal::of_entity(w.bob),
                 role_of(w.comp_sd, "Executable"),
                 {{"CPU", Attribute::make_cap("CPU", 40)}}, false, 0, 0, 1);
  Delegation tampered = *d;
  tampered.attributes["CPU"] = Attribute::make_cap("CPU", 100);  // escalate
  EXPECT_FALSE(tampered.verify_signature());
}

TEST(Credential, TypeClassificationMatchesTable1) {
  World w;
  // Self-certifying: [Alice -> Comp.NY.Member] Comp.NY
  auto self_cert = issue(w.comp_ny, Principal::of_entity(w.alice),
                         role_of(w.comp_ny, "Member"), {}, false, 0, 0, 1);
  EXPECT_EQ(self_cert->type(), DelegationType::kSelfCertifying);

  // Third-party: [Inc.SE.Member -> Comp.NY.Partner] Comp.SD
  auto third = issue(w.comp_sd, Principal::of_role(w.inc_se, "Member"),
                     role_of(w.comp_ny, "Partner"), {}, false, 0, 0, 2);
  EXPECT_EQ(third->type(), DelegationType::kThirdParty);

  // Assignment: [Comp.SD -> Comp.NY.Partner '] Comp.NY
  auto assign = issue(w.comp_ny, Principal::of_entity(w.comp_sd),
                      role_of(w.comp_ny, "Partner"), {}, true, 0, 0, 3);
  EXPECT_EQ(assign->type(), DelegationType::kAssignment);
}

TEST(Credential, DisplayMatchesPaperNotation) {
  World w;
  auto d = issue(w.comp_ny, Principal::of_role(w.comp_sd, "Member"),
                 role_of(w.comp_ny, "Member"), {}, false, 0, 0, 1);
  EXPECT_EQ(d->display(), "[ Comp.SD.Member -> Comp.NY.Member ] Comp.NY");

  auto a = issue(w.comp_ny, Principal::of_entity(w.comp_sd),
                 role_of(w.comp_ny, "Partner"), {}, true, 0, 0, 2);
  EXPECT_EQ(a->display(), "[ Comp.SD -> Comp.NY.Partner ' ] Comp.NY");

  auto with_attrs = issue(
      w.mail, Principal::of_role(w.dell, "Linux"), role_of(w.mail, "Node"),
      {{"Secure", Attribute::make_set("Secure", {"true", "false"})},
       {"Trust", Attribute::make_range("Trust", 0, 10)}},
      false, 0, 0, 3);
  EXPECT_EQ(with_attrs->display(),
            "[ Dell.Linux -> Mail.Node ] Mail with Secure={false,true} "
            "Trust=(0,10)");
}

TEST(Credential, ExpiryIsChecked) {
  World w;
  auto d = issue(w.comp_ny, Principal::of_entity(w.alice),
                 role_of(w.comp_ny, "Member"), {}, false, 0,
                 /*expires_at=*/100, 1);
  EXPECT_FALSE(d->expired_at(50));
  EXPECT_FALSE(d->expired_at(100));
  EXPECT_TRUE(d->expired_at(101));
}

// -------------------------------------------------------------- Repository

TEST(Repository, IndexesByTargetAndSubject) {
  World w;
  auto d = w.add(w.comp_ny, Principal::of_entity(w.alice),
                 role_of(w.comp_ny, "Member"));
  EXPECT_EQ(w.repo.by_target(role_of(w.comp_ny, "Member")).size(), 1u);
  EXPECT_EQ(w.repo.by_subject(Principal::of_entity(w.alice)).size(), 1u);
  EXPECT_TRUE(w.repo.by_target(role_of(w.comp_ny, "Partner")).empty());
  EXPECT_EQ(w.repo.size(), 1u);
  EXPECT_EQ(d->serial, 1u);
}

TEST(Repository, DiscoveryTagsFilterQueries) {
  World w;
  DiscoveryTags tags;
  tags.searchable_from_object = false;
  auto d = issue(w.comp_ny, Principal::of_entity(w.alice),
                 role_of(w.comp_ny, "Member"), {}, false, 0, 0,
                 w.repo.next_serial(), tags);
  w.repo.add(d);
  EXPECT_TRUE(w.repo.by_target(role_of(w.comp_ny, "Member")).empty());
  EXPECT_EQ(w.repo.by_target(role_of(w.comp_ny, "Member"), false).size(), 1u);
  EXPECT_EQ(w.repo.by_subject(Principal::of_entity(w.alice)).size(), 1u);
}

TEST(Repository, RevocationNotifiesSubscribers) {
  World w;
  std::vector<std::uint64_t> seen;
  const auto sub = w.repo.subscribe([&](std::uint64_t s) { seen.push_back(s); });
  w.repo.revoke(7);
  w.repo.revoke(7);  // duplicate: no second notification
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{7}));
  EXPECT_TRUE(w.repo.is_revoked(7));
  w.repo.unsubscribe(sub);
  w.repo.revoke(9);
  EXPECT_EQ(seen.size(), 1u);
}

// ------------------------------------------------------------ Proof engine

TEST(Engine, DirectCredentialProves) {
  World w;
  w.add(w.comp_ny, Principal::of_entity(w.alice), role_of(w.comp_ny, "Member"));
  Engine engine(&w.repo);
  auto proof = engine.prove(Principal::of_entity(w.alice),
                            role_of(w.comp_ny, "Member"), 0);
  ASSERT_TRUE(proof.ok()) << proof.error().message;
  EXPECT_EQ(proof.value().credentials.size(), 1u);
  EXPECT_TRUE(engine.validate(proof.value(), 0));
}

TEST(Engine, NoCredentialNoProof) {
  World w;
  Engine engine(&w.repo);
  auto proof = engine.prove(Principal::of_entity(w.bob),
                            role_of(w.comp_ny, "Member"), 0);
  EXPECT_FALSE(proof.ok());
  EXPECT_EQ(proof.error().code, "no-proof");
}

TEST(Engine, TwoHopChainBobScenario) {
  // Paper §3.3 client authorization: Bob holds (11) [Bob -> Comp.SD.Member]
  // Comp.SD, and (2) [Comp.SD.Member -> Comp.NY.Member] Comp.NY maps the
  // role across domains.
  World w;
  w.add(w.comp_sd, Principal::of_entity(w.bob), role_of(w.comp_sd, "Member"));
  w.add(w.comp_ny, Principal::of_role(w.comp_sd, "Member"),
        role_of(w.comp_ny, "Member"));
  Engine engine(&w.repo);
  auto proof = engine.prove(Principal::of_entity(w.bob),
                            role_of(w.comp_ny, "Member"), 0);
  ASSERT_TRUE(proof.ok()) << proof.error().message;
  EXPECT_EQ(proof.value().credentials.size(), 2u);
  // Chain is subject-end first.
  EXPECT_EQ(proof.value().credentials[0]->subject.display(), "Bob");
  EXPECT_EQ(proof.value().credentials[1]->target.display(), "Comp.NY.Member");
  EXPECT_TRUE(engine.validate(proof.value(), 0));
}

TEST(Engine, ThirdPartyRequiresAssignmentRight) {
  // Paper credentials (3), (12), (15): Charlie -> Inc.SE.Member (by Inc.SE),
  // Inc.SE.Member -> Comp.NY.Partner (issued by Comp.SD, a third party!),
  // valid only because of [Comp.SD -> Comp.NY.Partner '] Comp.NY.
  World w;
  w.add(w.inc_se, Principal::of_entity(w.charlie),
        role_of(w.inc_se, "Member"));  // (15)
  w.add(w.comp_sd, Principal::of_role(w.inc_se, "Member"),
        role_of(w.comp_ny, "Partner"));  // (12) third-party

  Engine engine(&w.repo);
  // Without the assignment credential the proof must fail.
  auto without = engine.prove(Principal::of_entity(w.charlie),
                              role_of(w.comp_ny, "Partner"), 0);
  EXPECT_FALSE(without.ok());

  w.add(w.comp_ny, Principal::of_entity(w.comp_sd),
        role_of(w.comp_ny, "Partner"), {}, /*assignment=*/true);  // (3)
  auto with = engine.prove(Principal::of_entity(w.charlie),
                           role_of(w.comp_ny, "Partner"), 0);
  ASSERT_TRUE(with.ok()) << with.error().message;
  EXPECT_EQ(with.value().credentials.size(), 2u);
  ASSERT_EQ(with.value().support.size(), 1u);
  EXPECT_TRUE(with.value().support[0]->assignment);
  EXPECT_TRUE(engine.validate(with.value(), 0));
}

TEST(Engine, AttenuationAlongChain) {
  // CPU=100 at the NY grant, capped to 80 by SD: effective cap 80.
  World w;
  Entity mail_client = Entity::create("Mail.MailClient", w.rng);
  w.add(w.comp_ny, Principal::of_entity(mail_client),
        role_of(w.comp_ny, "Executable"),
        {{"CPU", Attribute::make_cap("CPU", 100)}});  // (8)
  w.add(w.comp_sd, Principal::of_role(w.comp_ny, "Executable"),
        role_of(w.comp_sd, "Executable"),
        {{"CPU", Attribute::make_cap("CPU", 80)}});  // (14)
  Engine engine(&w.repo);
  auto proof = engine.prove(Principal::of_entity(mail_client),
                            role_of(w.comp_sd, "Executable"), 0);
  ASSERT_TRUE(proof.ok()) << proof.error().message;
  EXPECT_EQ(proof.value().effective_attributes.at("CPU").hi, 80);
}

TEST(Engine, RequiredAttributesEnforced) {
  World w;
  w.add(w.mail, Principal::of_role(w.ibm, "Windows"), role_of(w.mail, "Node"),
        {{"Secure", Attribute::make_set("Secure", {"false"})},
         {"Trust", Attribute::make_range("Trust", 0, 1)}});  // (6)
  w.add(w.ibm, Principal::of_role(w.inc_se, "PC"), role_of(w.ibm, "Windows"));  // (16)
  Entity pc_owner = w.inc_se;
  Engine engine(&w.repo);

  ProveOptions needs_secure;
  needs_secure.required = {{"Secure", Attribute::make_set("Secure", {"true"})}};
  auto fail = engine.prove(Principal::of_role(w.inc_se, "PC"),
                           role_of(w.mail, "Node"), 0, needs_secure);
  EXPECT_FALSE(fail.ok());
  EXPECT_EQ(fail.error().code, "attributes-unsatisfied");

  ProveOptions needs_low_trust;
  needs_low_trust.required = {
      {"Trust", Attribute::make_range("Trust", 0, 1)}};
  auto ok = engine.prove(Principal::of_role(w.inc_se, "PC"),
                         role_of(w.mail, "Node"), 0, needs_low_trust);
  EXPECT_TRUE(ok.ok()) << ok.error().message;
}

TEST(Engine, ExpiredCredentialUnusable) {
  World w;
  w.add(w.comp_ny, Principal::of_entity(w.alice), role_of(w.comp_ny, "Member"),
        {}, false, /*expires=*/100);
  Engine engine(&w.repo);
  EXPECT_TRUE(engine
                  .prove(Principal::of_entity(w.alice),
                         role_of(w.comp_ny, "Member"), 50)
                  .ok());
  EXPECT_FALSE(engine
                   .prove(Principal::of_entity(w.alice),
                          role_of(w.comp_ny, "Member"), 200)
                   .ok());
}

TEST(Engine, RevokedCredentialUnusable) {
  World w;
  auto d = w.add(w.comp_ny, Principal::of_entity(w.alice),
                 role_of(w.comp_ny, "Member"));
  Engine engine(&w.repo);
  auto proof = engine.prove(Principal::of_entity(w.alice),
                            role_of(w.comp_ny, "Member"), 0);
  ASSERT_TRUE(proof.ok());
  w.repo.revoke(d->serial);
  EXPECT_FALSE(engine.validate(proof.value(), 0));
  EXPECT_FALSE(engine
                   .prove(Principal::of_entity(w.alice),
                          role_of(w.comp_ny, "Member"), 0)
                   .ok());
}

TEST(Engine, RevokedSupportCredentialInvalidatesProof) {
  World w;
  w.add(w.inc_se, Principal::of_entity(w.charlie), role_of(w.inc_se, "Member"));
  w.add(w.comp_sd, Principal::of_role(w.inc_se, "Member"),
        role_of(w.comp_ny, "Partner"));
  auto assignment = w.add(w.comp_ny, Principal::of_entity(w.comp_sd),
                          role_of(w.comp_ny, "Partner"), {}, true);
  Engine engine(&w.repo);
  auto proof = engine.prove(Principal::of_entity(w.charlie),
                            role_of(w.comp_ny, "Partner"), 0);
  ASSERT_TRUE(proof.ok());
  w.repo.revoke(assignment->serial);
  EXPECT_FALSE(engine.validate(proof.value(), 0));
}

TEST(Engine, CyclicDelegationsTerminate) {
  World w;
  // A.r1 <- B.r2 <- A.r1 (cycle), plus nothing grants either to Alice.
  Entity a = Entity::create("A", w.rng);
  Entity b = Entity::create("B", w.rng);
  w.add(a, Principal::of_role(b, "r2"), role_of(a, "r1"));
  w.add(b, Principal::of_role(a, "r1"), role_of(b, "r2"));
  Engine engine(&w.repo);
  auto proof =
      engine.prove(Principal::of_entity(w.alice), role_of(a, "r1"), 0);
  EXPECT_FALSE(proof.ok());
}

TEST(Engine, DeepChainWithinDepthBound) {
  World w;
  // alice -> E0.r, Ei.r -> Ei+1.r for i in [0,10): prove alice is E9.r.
  std::vector<Entity> entities;
  for (int i = 0; i < 10; ++i) {
    entities.push_back(Entity::create("E" + std::to_string(i), w.rng));
  }
  w.add(entities[0], Principal::of_entity(w.alice), role_of(entities[0], "r"));
  for (int i = 0; i + 1 < 10; ++i) {
    w.add(entities[i + 1], Principal::of_role(entities[i], "r"),
          role_of(entities[i + 1], "r"));
  }
  Engine engine(&w.repo);
  auto proof = engine.prove(Principal::of_entity(w.alice),
                            role_of(entities[9], "r"), 0);
  ASSERT_TRUE(proof.ok()) << proof.error().message;
  EXPECT_EQ(proof.value().credentials.size(), 10u);

  ProveOptions shallow;
  shallow.max_depth = 4;
  EXPECT_FALSE(engine
                   .prove(Principal::of_entity(w.alice),
                          role_of(entities[9], "r"), 0, shallow)
                   .ok());
}

TEST(Engine, DisabledDiscoveryTagsStillProves) {
  World w;
  w.add(w.comp_sd, Principal::of_entity(w.bob), role_of(w.comp_sd, "Member"));
  w.add(w.comp_ny, Principal::of_role(w.comp_sd, "Member"),
        role_of(w.comp_ny, "Member"));
  Engine engine(&w.repo);
  ProveOptions opts;
  opts.use_discovery_tags = false;
  auto proof = engine.prove(Principal::of_entity(w.bob),
                            role_of(w.comp_ny, "Member"), 0, opts);
  EXPECT_TRUE(proof.ok());
}

TEST(Engine, ValidateRejectsForgedChainLink) {
  World w;
  w.add(w.comp_sd, Principal::of_entity(w.bob), role_of(w.comp_sd, "Member"));
  w.add(w.comp_ny, Principal::of_role(w.comp_sd, "Member"),
        role_of(w.comp_ny, "Member"));
  Engine engine(&w.repo);
  auto proof = engine.prove(Principal::of_entity(w.bob),
                            role_of(w.comp_ny, "Member"), 0);
  ASSERT_TRUE(proof.ok());

  // Swap the chain order: structural link check must fail.
  Proof broken = proof.value();
  std::swap(broken.credentials[0], broken.credentials[1]);
  EXPECT_FALSE(engine.validate(broken, 0));

  // Empty chain is invalid.
  Proof empty = proof.value();
  empty.credentials.clear();
  EXPECT_FALSE(engine.validate(empty, 0));
}

TEST(Engine, ProofDisplayListsChain) {
  World w;
  w.add(w.comp_sd, Principal::of_entity(w.bob), role_of(w.comp_sd, "Member"));
  w.add(w.comp_ny, Principal::of_role(w.comp_sd, "Member"),
        role_of(w.comp_ny, "Member"));
  Engine engine(&w.repo);
  auto proof = engine.prove(Principal::of_entity(w.bob),
                            role_of(w.comp_ny, "Member"), 0);
  ASSERT_TRUE(proof.ok());
  const std::string text = proof.value().display();
  EXPECT_NE(text.find("Bob is Comp.NY.Member"), std::string::npos);
  EXPECT_NE(text.find("[ Bob -> Comp.SD.Member ] Comp.SD"), std::string::npos);
}

// ---------------------------------------------------------- Proof monitors

TEST(ProofMonitor, FiresOnRevocationOfChainCredential) {
  World w;
  auto d1 = w.add(w.comp_sd, Principal::of_entity(w.bob),
                  role_of(w.comp_sd, "Member"));
  w.add(w.comp_ny, Principal::of_role(w.comp_sd, "Member"),
        role_of(w.comp_ny, "Member"));
  Engine engine(&w.repo);
  auto proof = engine.prove(Principal::of_entity(w.bob),
                            role_of(w.comp_ny, "Member"), 0);
  ASSERT_TRUE(proof.ok());

  int fired = 0;
  std::uint64_t revoked_serial = 0;
  ProofMonitor monitor(&w.repo, proof.value(),
                       [&](const Proof&, std::uint64_t serial) {
                         ++fired;
                         revoked_serial = serial;
                       });
  EXPECT_FALSE(monitor.invalidated());
  w.repo.revoke(d1->serial);
  EXPECT_TRUE(monitor.invalidated());
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(revoked_serial, d1->serial);
}

TEST(ProofMonitor, IgnoresUnrelatedRevocations) {
  World w;
  auto d1 = w.add(w.comp_ny, Principal::of_entity(w.alice),
                  role_of(w.comp_ny, "Member"));
  auto unrelated = w.add(w.comp_ny, Principal::of_entity(w.bob),
                         role_of(w.comp_ny, "Partner"));
  Engine engine(&w.repo);
  auto proof = engine.prove(Principal::of_entity(w.alice),
                            role_of(w.comp_ny, "Member"), 0);
  ASSERT_TRUE(proof.ok());
  int fired = 0;
  ProofMonitor monitor(&w.repo, proof.value(),
                       [&](const Proof&, std::uint64_t) { ++fired; });
  w.repo.revoke(unrelated->serial);
  EXPECT_EQ(fired, 0);
  EXPECT_FALSE(monitor.invalidated());
  (void)d1;
}

TEST(ProofMonitor, UnsubscribesOnDestruction) {
  World w;
  auto d1 = w.add(w.comp_ny, Principal::of_entity(w.alice),
                  role_of(w.comp_ny, "Member"));
  Engine engine(&w.repo);
  auto proof = engine.prove(Principal::of_entity(w.alice),
                            role_of(w.comp_ny, "Member"), 0);
  ASSERT_TRUE(proof.ok());
  int fired = 0;
  {
    ProofMonitor monitor(&w.repo, proof.value(),
                         [&](const Proof&, std::uint64_t) { ++fired; });
  }
  w.repo.revoke(d1->serial);
  EXPECT_EQ(fired, 0);
}

// ---------------------------------------- Property-style parameterized sweep

// Chain-length sweep: proofs across k-hop role mappings always validate and
// attenuate CPU to the minimum cap on the chain.
class ChainLengthSweep : public ::testing::TestWithParam<int> {};

TEST_P(ChainLengthSweep, ProofFoundAndAttenuationIsMinimum) {
  const int hops = GetParam();
  util::Rng rng(1000 + hops);
  Repository repo;
  Entity user = Entity::create("User", rng);
  std::vector<Entity> guards;
  for (int i = 0; i < hops; ++i) {
    guards.push_back(Entity::create("G" + std::to_string(i), rng));
  }
  std::int64_t min_cap = 1'000'000;
  util::Rng cap_rng(7 * hops + 1);
  // user -> G0.r with some cap; Gi.r -> Gi+1.r with decreasing-ish caps.
  std::int64_t cap = 50 + static_cast<std::int64_t>(cap_rng.next_below(100));
  min_cap = std::min(min_cap, cap);
  repo.add(issue(guards[0], Principal::of_entity(user), role_of(guards[0], "r"),
                 {{"CPU", Attribute::make_cap("CPU", cap)}}, false, 0, 0,
                 repo.next_serial()));
  for (int i = 0; i + 1 < hops; ++i) {
    cap = 50 + static_cast<std::int64_t>(cap_rng.next_below(100));
    min_cap = std::min(min_cap, cap);
    repo.add(issue(guards[i + 1], Principal::of_role(guards[i], "r"),
                   role_of(guards[i + 1], "r"),
                   {{"CPU", Attribute::make_cap("CPU", cap)}}, false, 0, 0,
                   repo.next_serial()));
  }
  Engine engine(&repo);
  auto proof = engine.prove(Principal::of_entity(user),
                            role_of(guards[hops - 1], "r"), 0);
  ASSERT_TRUE(proof.ok()) << proof.error().message;
  EXPECT_EQ(proof.value().credentials.size(), static_cast<std::size_t>(hops));
  EXPECT_EQ(proof.value().effective_attributes.at("CPU").hi, min_cap);
  EXPECT_TRUE(engine.validate(proof.value(), 0));

  // Revoking any single credential on the chain kills the proof.
  const std::size_t victim =
      cap_rng.next_below(static_cast<std::uint64_t>(hops));
  repo.revoke(proof.value().credentials[victim]->serial);
  EXPECT_FALSE(engine.validate(proof.value(), 0));
}

INSTANTIATE_TEST_SUITE_P(Depths, ChainLengthSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 12));

}  // namespace
}  // namespace psf::drbac
