// Property-based suites over randomized inputs (DESIGN.md §6 invariants):
//  - dRBAC: on random delegation graphs, every proof the engine returns
//    re-validates, attenuation only narrows, revocation kills proofs.
//  - Network: Dijkstra path properties on random topologies.
//  - Coherence: extract/merge round-trips on random field states.
//  - Crypto: sign/verify and cipher round-trips across message sizes.
#include <gtest/gtest.h>

#include "crypto/chacha20.hpp"
#include "crypto/sign.hpp"
#include "drbac/engine.hpp"
#include "mail/components.hpp"
#include "minilang/interp.hpp"
#include "minilang/parser.hpp"
#include "switchboard/network.hpp"
#include "util/rng.hpp"
#include "views/cache.hpp"
#include "views/vig.hpp"

namespace psf {
namespace {

using drbac::Principal;
using minilang::Value;

// ------------------------------------------------- dRBAC on random graphs

class RandomGraphProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomGraphProperty, ProofsSoundAttenuationMonotoneRevocationFatal) {
  util::Rng rng(GetParam());
  drbac::Repository repo;

  // Random world: `E` entities each owning role "r"; random grant edges
  // between roles; a user granted a random subset of roots.
  const int entity_count = 4 + static_cast<int>(rng.next_below(8));
  std::vector<drbac::Entity> entities;
  for (int i = 0; i < entity_count; ++i) {
    entities.push_back(
        drbac::Entity::create("E" + std::to_string(i), rng));
  }
  drbac::Entity user = drbac::Entity::create("user", rng);

  // Direct grants to the user from ~2 entities.
  for (int i = 0; i < 2; ++i) {
    const auto& owner = entities[rng.next_below(entities.size())];
    repo.add(drbac::issue(
        owner, Principal::of_entity(user), drbac::role_of(owner, "r"),
        {{"CPU", drbac::Attribute::make_cap(
                     "CPU", 50 + static_cast<std::int64_t>(rng.next_below(100)))}},
        false, 0, 0, repo.next_serial()));
  }
  // Random role-to-role mapping edges (~2x entities).
  for (int i = 0; i < 2 * entity_count; ++i) {
    const auto& from = entities[rng.next_below(entities.size())];
    const auto& to = entities[rng.next_below(entities.size())];
    repo.add(drbac::issue(
        to, Principal::of_role(from, "r"), drbac::role_of(to, "r"),
        {{"CPU", drbac::Attribute::make_cap(
                     "CPU", 30 + static_cast<std::int64_t>(rng.next_below(120)))}},
        false, 0, 0, repo.next_serial()));
  }

  drbac::Engine engine(&repo);
  int proofs_found = 0;
  for (const auto& goal_owner : entities) {
    auto proof = engine.prove(Principal::of_entity(user),
                              drbac::role_of(goal_owner, "r"), 0);
    if (!proof.ok()) continue;
    ++proofs_found;
    const drbac::Proof& p = proof.value();

    // Soundness: the engine's own validator accepts it.
    EXPECT_TRUE(engine.validate(p, 0));

    // Structural: chain links subject->...->target.
    EXPECT_TRUE(p.credentials.front()->subject ==
                Principal::of_entity(user));
    EXPECT_TRUE(p.credentials.back()->target ==
                drbac::role_of(goal_owner, "r"));

    // Attenuation monotone: the effective CPU cap never exceeds any
    // credential's cap along the chain.
    if (p.effective_attributes.count("CPU") > 0) {
      const std::int64_t effective = p.effective_attributes.at("CPU").hi;
      for (const auto& credential : p.credentials) {
        auto it = credential->attributes.find("CPU");
        if (it != credential->attributes.end()) {
          EXPECT_LE(effective, it->second.hi);
        }
      }
    }

    // Revocation of a random chain credential invalidates the proof.
    const auto& victim =
        p.credentials[rng.next_below(p.credentials.size())];
    repo.revoke(victim->serial);
    EXPECT_FALSE(engine.validate(p, 0));
  }
  // Direct grants exist, so at least one goal must be provable.
  EXPECT_GE(proofs_found, 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphProperty,
                         ::testing::Range<std::uint64_t>(1, 16));

// ------------------------------------------------- network path properties

class RandomTopologyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTopologyProperty, PathsAreConsistent) {
  util::Rng rng(GetParam() * 977);
  switchboard::Network net;
  const int host_count = 4 + static_cast<int>(rng.next_below(10));
  for (int i = 0; i < host_count; ++i) {
    net.add_host("h" + std::to_string(i));
  }
  // Random links.
  for (int i = 0; i < 2 * host_count; ++i) {
    const std::string a = "h" + std::to_string(rng.next_below(host_count));
    const std::string b = "h" + std::to_string(rng.next_below(host_count));
    if (a == b) continue;
    net.connect(a, b,
                {static_cast<util::SimTime>(1 + rng.next_below(50)) *
                     util::kMillisecond,
                 static_cast<std::int64_t>(100 + rng.next_below(1000)),
                 rng.next_below(2) == 0});
  }

  for (int i = 0; i < host_count; ++i) {
    for (int j = 0; j < host_count; ++j) {
      const std::string a = "h" + std::to_string(i);
      const std::string b = "h" + std::to_string(j);
      auto forward = net.path(a, b);
      auto backward = net.path(b, a);
      // Symmetry of reachability and optimal latency.
      EXPECT_EQ(forward.has_value(), backward.has_value());
      if (!forward.has_value()) continue;
      EXPECT_EQ(forward->latency, backward->latency);
      // Path endpoints and per-hop consistency.
      EXPECT_EQ(forward->hops.front(), a);
      EXPECT_EQ(forward->hops.back(), b);
      util::SimTime sum = 0;
      std::int64_t min_bw = 0;
      bool secure = true;
      for (std::size_t h = 0; h + 1 < forward->hops.size(); ++h) {
        auto link = net.link(forward->hops[h], forward->hops[h + 1]);
        ASSERT_TRUE(link.has_value());
        sum += link->latency;
        if (!link->secure) secure = false;
        if (link->bandwidth_kbps != 0 &&
            (min_bw == 0 || link->bandwidth_kbps < min_bw)) {
          min_bw = link->bandwidth_kbps;
        }
      }
      EXPECT_EQ(forward->latency, sum);
      EXPECT_EQ(forward->secure, secure);
      EXPECT_EQ(forward->bandwidth_kbps, min_bw);
      // Optimality vs any 2-hop alternative through a shared neighbor.
      for (int k = 0; k < host_count; ++k) {
        const std::string via = "h" + std::to_string(k);
        auto leg1 = net.link(a, via);
        auto leg2 = net.link(via, b);
        if (leg1.has_value() && leg2.has_value()) {
          EXPECT_LE(forward->latency, leg1->latency + leg2->latency);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTopologyProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

// --------------------------------------------- coherence image round-trips

class CoherenceProperty : public ::testing::TestWithParam<std::uint64_t> {};

Value random_value(util::Rng& rng, int depth = 0) {
  switch (rng.next_below(depth > 2 ? 5 : 7)) {
    case 0: return Value::null();
    case 1: return Value::boolean(rng.next_below(2) == 0);
    case 2: return Value::integer(static_cast<std::int64_t>(rng.next_u64()));
    case 3: return Value::string("s" + std::to_string(rng.next_below(1000)));
    case 4: return Value::bytes(rng.next_bytes(rng.next_below(16)));
    case 5: {
      minilang::ValueList items;
      for (std::size_t i = 0; i < rng.next_below(4); ++i) {
        items.push_back(random_value(rng, depth + 1));
      }
      return Value::list(std::move(items));
    }
    default: {
      minilang::ValueMap items;
      for (std::size_t i = 0; i < rng.next_below(4); ++i) {
        items["k" + std::to_string(i)] = random_value(rng, depth + 1);
      }
      return Value::map(std::move(items));
    }
  }
}

TEST_P(CoherenceProperty, ExtractMergeRoundTripsRandomStates) {
  util::Rng rng(GetParam() * 131);
  minilang::ClassRegistry registry;
  mail::register_all(registry);
  views::Vig vig(&registry);
  auto def = views::ViewDefinition::from_xml(mail::view_xml_member());
  ASSERT_TRUE(vig.generate(def.value()).ok());

  auto a = minilang::instantiate(registry, "ViewMailClient_Member");
  auto b = minilang::instantiate(registry, "ViewMailClient_Member");
  // Randomize a's serializable fields.
  for (const char* field : {"accounts", "inbox", "outbox", "notes", "meetings"}) {
    if (rng.next_below(2) == 0) {
      a->set_field(field, random_value(rng));
    }
  }
  const Value image = a->call("extractImageFromView", {});
  b->call("mergeImageIntoView", {image});
  for (const char* field : {"accounts", "inbox", "outbox", "notes", "meetings"}) {
    EXPECT_TRUE(b->get_field(field).equals(a->get_field(field))) << field;
  }
  // Idempotence: merging the same image twice changes nothing further.
  b->call("mergeImageIntoView", {image});
  const Value image_b = b->call("extractImageFromView", {});
  EXPECT_EQ(image.as_bytes(), image_b.as_bytes());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoherenceProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

// ------------------------------------------------------- crypto size sweeps

class CryptoSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(CryptoSizeSweep, SignVerifyAndCipherAcrossSizes) {
  const int size = GetParam();
  util::Rng rng(size + 7);
  const util::Bytes message = rng.next_bytes(static_cast<std::size_t>(size));

  const crypto::KeyPair kp = crypto::generate_keypair(rng);
  const crypto::Signature sig = crypto::sign(kp, message);
  EXPECT_TRUE(crypto::verify(kp.public_key, message, sig));
  if (size > 0) {
    util::Bytes tampered = message;
    tampered[static_cast<std::size_t>(size) / 2] ^= 0x10;
    EXPECT_FALSE(crypto::verify(kp.public_key, tampered, sig));
  }

  crypto::ChaChaKey key{};
  std::copy_n(rng.next_bytes(32).begin(), 32, key.begin());
  crypto::ChaChaNonce nonce{};
  const util::Bytes ciphertext = crypto::chacha20_xor(key, nonce, 0, message);
  EXPECT_EQ(crypto::chacha20_xor(key, nonce, 0, ciphertext), message);
  if (size >= 8) EXPECT_NE(ciphertext, message);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CryptoSizeSweep,
                         ::testing::Values(0, 1, 63, 64, 65, 1000, 65536));

// --------------------------------------- interpreter determinism under seeds

class InterpreterDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InterpreterDeterminism, SameProgramSameResult) {
  // Interpreters share no hidden state: two registries running the same
  // random program produce identical results.
  util::Rng rng(GetParam() * 3 + 1);
  const std::int64_t a = static_cast<std::int64_t>(rng.next_below(100));
  const std::int64_t b = static_cast<std::int64_t>(rng.next_below(100)) + 1;
  const std::string source =
      "var acc = 0; var i = 0; while (i < " + std::to_string(a) +
      ") { acc = acc + i * " + std::to_string(b) +
      " % 7; i = i + 1; } return acc;";

  auto run = [&]() {
    minilang::ClassRegistry registry;
    auto cls = std::make_shared<minilang::ClassDef>();
    cls->name = "P";
    minilang::MethodDef m;
    m.name = "go";
    m.source = source;
    m.body = std::move(minilang::parse_block_source(source)).take();
    cls->methods.push_back(std::move(m));
    registry.register_class(cls);
    auto obj = minilang::instantiate(registry, "P");
    return obj->call("go", {}).as_int();
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterpreterDeterminism,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace psf
