// SwitchboardStream: secure, monitored bulk transport over a Connection.
#include <gtest/gtest.h>

#include <thread>

#include "switchboard/authorizer.hpp"
#include "switchboard/stream.hpp"
#include "util/rng.hpp"

namespace psf::switchboard {
namespace {

constexpr auto kA = Connection::End::kA;
constexpr auto kB = Connection::End::kB;
using util::kMillisecond;

struct StreamWorld {
  util::Rng rng{909};
  std::shared_ptr<util::SimClock> clock = std::make_shared<util::SimClock>();
  Network net;
  Switchboard a{"a", &net, clock};
  Switchboard b{"b", &net, clock};

  StreamWorld() {
    net.connect("a", "b", {kMillisecond, 0, false});
    AuthorizationSuite suite;
    suite.identity = drbac::Entity::create("B", rng);
    suite.authorizer = std::make_shared<AcceptAllAuthorizer>();
    b.set_suite(suite);
  }

  std::shared_ptr<Connection> connect() {
    AuthorizationSuite suite;
    suite.identity = drbac::Entity::create("A", rng);
    suite.authorizer = std::make_shared<AcceptAllAuthorizer>();
    return a.connect(b, suite, rng).value();
  }
};

TEST(Stream, RoundTripsSmallPayload) {
  StreamWorld w;
  SwitchboardStream stream(w.connect());
  const util::Bytes data = util::to_bytes("hello across the WAN");
  stream.send(kA, data);
  EXPECT_EQ(stream.available(kB), data.size());
  EXPECT_EQ(stream.receive(kB, 1024), data);
  EXPECT_EQ(stream.available(kB), 0u);
}

TEST(Stream, ChunksLargePayloads) {
  StreamWorld w;
  SwitchboardStream stream(w.connect(), /*chunk_size=*/1024);
  const util::Bytes data = w.rng.next_bytes(10'000);
  stream.send(kA, data);
  EXPECT_EQ(stream.stats().chunks, 10u);  // ceil(10000/1024)
  EXPECT_EQ(stream.stats().payload_bytes, 10'000u);
  EXPECT_GT(stream.stats().wire_bytes, 10'000u);  // framing + MAC overhead
  // Receive in odd-sized pieces; reassembly must be exact.
  util::Bytes got;
  while (stream.available(kB) > 0) {
    util::append(got, stream.receive(kB, 777));
  }
  EXPECT_EQ(got, data);
}

TEST(Stream, BothDirectionsIndependent) {
  StreamWorld w;
  SwitchboardStream stream(w.connect());
  stream.send(kA, util::to_bytes("a-to-b"));
  stream.send(kB, util::to_bytes("b-to-a!"));
  EXPECT_EQ(util::to_string(stream.receive(kB, 64)), "a-to-b");
  EXPECT_EQ(util::to_string(stream.receive(kA, 64)), "b-to-a!");
}

TEST(Stream, ChargesTheNetwork) {
  StreamWorld w;
  SwitchboardStream stream(w.connect(), 512);
  const auto before = w.net.stats("a", "b").bytes;
  stream.send(kA, w.rng.next_bytes(2048));
  EXPECT_GT(w.net.stats("a", "b").bytes, before + 2048);
}

TEST(Stream, ClosedConnectionRefusesSend) {
  StreamWorld w;
  auto conn = w.connect();
  SwitchboardStream stream(conn);
  conn->close("done");
  EXPECT_THROW(stream.send(kA, util::to_bytes("late")), minilang::EvalError);
}

TEST(Stream, PartitionClosesMidTransfer) {
  StreamWorld w;
  auto conn = w.connect();
  SwitchboardStream stream(conn);
  w.net.disconnect("a", "b");
  EXPECT_THROW(stream.send(kA, util::to_bytes("x")), minilang::EvalError);
  EXPECT_FALSE(conn->open());
}

TEST(Stream, EmptySendIsAWrite) {
  StreamWorld w;
  SwitchboardStream stream(w.connect());
  stream.send(kA, {});
  EXPECT_EQ(stream.stats().chunks, 1u);
  EXPECT_EQ(stream.available(kB), 0u);
}

TEST(Stream, ConcurrentSendersDoNotCorrupt) {
  StreamWorld w;
  SwitchboardStream stream(w.connect(), 256);
  std::thread t1([&] {
    for (int i = 0; i < 20; ++i) stream.send(kA, util::Bytes(100, 0xAA));
  });
  std::thread t2([&] {
    for (int i = 0; i < 20; ++i) stream.send(kB, util::Bytes(100, 0xBB));
  });
  t1.join();
  t2.join();
  const util::Bytes at_b = stream.receive(kB, 100'000);
  const util::Bytes at_a = stream.receive(kA, 100'000);
  EXPECT_EQ(at_b.size(), 2000u);
  EXPECT_EQ(at_a.size(), 2000u);
  for (std::uint8_t x : at_b) EXPECT_EQ(x, 0xAA);
  for (std::uint8_t x : at_a) EXPECT_EQ(x, 0xBB);
}

}  // namespace
}  // namespace psf::switchboard
