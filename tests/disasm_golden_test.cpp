// Golden-file tests for minilang::disassemble (DESIGN.md §4j/§4l): the
// listing format is part of the operator surface (vig_cli --dump-bytecode,
// compile-failure triage), so representative methods are pinned byte-for-byte
// against checked-in goldens. The three methods cover the three listing
// features the optimizer added: cost folding annotations ([cost N]) on a
// field-load CSE victim, inline-cache slots ([ic N]) on a member-call site,
// and the plain unoptimized encoding of loops and branches.
//
// Regenerate after an intentional format change with:
//   disasm_golden_test --update-golden
// (custom main below — this target links gtest without gtest_main).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "minilang/compile.hpp"
#include "minilang/parser.hpp"

namespace psf::minilang {
namespace {

bool g_update_golden = false;

std::string golden_path(const std::string& name) {
  return std::string(PSF_DISASM_GOLDEN_DIR) + "/" + name + ".golden";
}

// Pin PSF_MINILANG_OPT for one compile so goldens do not depend on the
// ambient environment of whoever runs the suite.
class OptEnv {
 public:
  explicit OptEnv(const char* value) {
    const char* prior = std::getenv("PSF_MINILANG_OPT");
    had_prior_ = prior != nullptr;
    if (had_prior_) prior_ = prior;
    setenv("PSF_MINILANG_OPT", value, 1);
  }
  ~OptEnv() {
    if (had_prior_) {
      setenv("PSF_MINILANG_OPT", prior_.c_str(), 1);
    } else {
      unsetenv("PSF_MINILANG_OPT");
    }
  }

 private:
  bool had_prior_ = false;
  std::string prior_;
};

// One fixed class, compiled fresh per test so each golden sees exactly the
// optimizer setting it pins.
std::shared_ptr<ClassRegistry> make_golden_registry() {
  auto registry = std::make_shared<ClassRegistry>();
  auto cls = std::make_shared<ClassDef>();
  cls->name = "Golden";
  cls->fields.push_back({"balance", "int", Value::integer(0)});
  cls->fields.push_back({"count", "int", Value::integer(0)});
  auto add = [&](const std::string& name,
                 const std::vector<std::string>& params,
                 const std::string& body) {
    MethodDef m;
    m.name = name;
    m.params = params;
    m.source = body;
    auto parsed = parse_block_source(body);
    ASSERT_TRUE(parsed.ok()) << name << ": " << parsed.error().message;
    m.body = std::move(parsed).take();
    cls->methods.push_back(std::move(m));
  };
  add("fieldExpr", {"n"},
      "return n + balance * balance + balance - count * count;");
  add("relay", {"target"}, "return target.ping(balance);");
  add("loops", {"n"}, R"(
      var total = 0;
      for (var i = 0; i < n; i = i + 1) {
        if (i % 2 == 0) { continue; }
        total = total + i;
      }
      return total;)");
  registry->register_class(cls);
  return registry;
}

void check_golden(const std::string& name, const char* opt,
                  const std::string& method) {
  OptEnv env(opt);
  auto registry = make_golden_registry();
  const auto cls = registry->find_class("Golden");
  ASSERT_NE(cls, nullptr);
  const MethodDef* def = cls->find_method(method);
  ASSERT_NE(def, nullptr);
  const CompiledMethod* code = ensure_compiled(*registry, *cls, *def);
  ASSERT_NE(code, nullptr) << method << " failed to compile";
  const std::string listing = disassemble(*code);
  const std::string path = golden_path(name);
  if (g_update_golden) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << listing;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " (regenerate with --update-golden)";
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(listing, want.str())
      << "disassembly drifted from " << path
      << "; if intentional, rerun with --update-golden";
}

TEST(DisasmGolden, FieldCseWithCostFolding) {
  check_golden("field_cse_opt", "1", "fieldExpr");
}

TEST(DisasmGolden, MemberCallInlineCacheSlot) {
  check_golden("member_call_ic", "1", "relay");
}

TEST(DisasmGolden, UnoptimizedControlFlow) {
  check_golden("loops_unopt", "0", "loops");
}

}  // namespace
}  // namespace psf::minilang

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-golden") {
      psf::minilang::g_update_golden = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      --i;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
