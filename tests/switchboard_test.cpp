#include <gtest/gtest.h>

#include <thread>

#include "drbac/credential.hpp"
#include "mail/components.hpp"
#include "minilang/interp.hpp"
#include "switchboard/authorizer.hpp"
#include "switchboard/channel.hpp"
#include "switchboard/network.hpp"
#include "switchboard/replay_window.hpp"
#include "views/cache.hpp"
#include "views/vig.hpp"

namespace psf::switchboard {
namespace {

using drbac::Principal;
using drbac::role_of;
using minilang::Value;
using util::kMillisecond;

// ---------------------------------------------------------------- Network

TEST(Network, LinkAndPathBasics) {
  Network net;
  net.connect("a", "b", {5 * kMillisecond, 1000, true});
  net.connect("b", "c", {10 * kMillisecond, 500, false});
  auto path = net.path("a", "c");
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->hops, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(path->latency, 15 * kMillisecond);
  EXPECT_EQ(path->bandwidth_kbps, 500);  // min over links
  EXPECT_FALSE(path->secure);            // any insecure link taints the path
}

TEST(Network, PathToSelfIsTrivial) {
  Network net;
  net.add_host("solo");
  auto path = net.path("solo", "solo");
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->latency, 0);
  EXPECT_TRUE(path->secure);
}

TEST(Network, UnreachableHostsHaveNoPath) {
  Network net;
  net.add_host("a");
  net.add_host("b");
  EXPECT_FALSE(net.path("a", "b").has_value());
}

TEST(Network, PicksLowestLatencyRoute) {
  Network net;
  net.connect("a", "b", {100 * kMillisecond, 0, true});
  net.connect("a", "m", {10 * kMillisecond, 0, true});
  net.connect("m", "b", {10 * kMillisecond, 0, true});
  auto path = net.path("a", "b");
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->hops.size(), 3u);  // via m
  EXPECT_EQ(path->latency, 20 * kMillisecond);
}

TEST(Network, TransferAccountsBandwidthAndStats) {
  Network net;
  net.connect("a", "b", {1 * kMillisecond, 8, true});  // 8 kbps = 1000 B/s
  auto t = net.transfer("a", "b", 1000);
  ASSERT_TRUE(t.has_value());
  // 1 ms latency + 1 s serialization.
  EXPECT_NEAR(static_cast<double>(*t), 1e9 + 1e6, 1e6);
  EXPECT_EQ(net.stats("a", "b").messages, 1u);
  EXPECT_EQ(net.stats("a", "b").bytes, 1000u);
}

TEST(Network, DisconnectSeversRoute) {
  Network net;
  net.connect("a", "b", {1 * kMillisecond, 0, true});
  ASSERT_TRUE(net.path("a", "b").has_value());
  net.disconnect("a", "b");
  EXPECT_FALSE(net.path("a", "b").has_value());
}

// ------------------------------------------------------ Connection fixture

struct ChannelWorld {
  util::Rng rng{2024};
  std::shared_ptr<util::SimClock> clock = std::make_shared<util::SimClock>();
  Network net;
  drbac::Repository repo;
  drbac::Entity guard{drbac::Entity::create("Comp.NY", rng)};
  drbac::Entity client{drbac::Entity::create("Alice", rng)};
  drbac::Entity server_id{drbac::Entity::create("Mail.Server", rng)};
  Switchboard client_board{"client-host", &net, clock};
  Switchboard server_board{"server-host", &net, clock};
  drbac::DelegationPtr client_cred;

  ChannelWorld() {
    net.connect("client-host", "server-host",
                {5 * kMillisecond, 10'000, false});
    client_cred = drbac::issue(guard, Principal::of_entity(client),
                               role_of(guard, "Member"), {}, false, 0, 0,
                               repo.next_serial());
    // The server requires clients to hold Comp.NY.Member; clients accept any
    // server (they authenticated its identity already).
    AuthorizationSuite server_suite;
    server_suite.identity = server_id;
    server_suite.authorizer = std::make_shared<RoleAuthorizer>(
        &repo, role_of(guard, "Member"));
    server_board.set_suite(server_suite);
  }

  AuthorizationSuite client_suite() {
    AuthorizationSuite suite;
    suite.identity = client;
    suite.credentials = {client_cred};
    suite.authorizer = std::make_shared<AcceptAllAuthorizer>();
    return suite;
  }

  std::shared_ptr<Connection> connect() {
    auto r = client_board.connect(server_board, client_suite(), rng);
    EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().message);
    return r.value();
  }
};

TEST(Connection, EstablishesWithMutualAuthorization) {
  ChannelWorld w;
  auto conn = w.connect();
  EXPECT_TRUE(conn->open());
  // The server side's proof about the client names the required role.
  EXPECT_EQ(conn->proof_of(Connection::End::kA).target.display(),
            "Comp.NY.Member");
  EXPECT_GT(conn->stats().handshake_time, 0);
}

TEST(Connection, RefusesUnauthorizedClient) {
  ChannelWorld w;
  AuthorizationSuite no_creds;
  no_creds.identity = drbac::Entity::create("Mallory", w.rng);
  no_creds.authorizer = std::make_shared<AcceptAllAuthorizer>();
  auto r = w.client_board.connect(w.server_board, no_creds, w.rng);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "authorization-denied");
}

TEST(Connection, RefusesWhenNoRoute) {
  ChannelWorld w;
  w.net.disconnect("client-host", "server-host");
  auto r = w.client_board.connect(w.server_board, w.client_suite(), w.rng);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "no-route");
}

TEST(Connection, RefusesWithoutRemoteSuite) {
  ChannelWorld w;
  Switchboard bare{"bare-host", &w.net, w.clock};
  w.net.connect("client-host", "bare-host", {1 * kMillisecond, 0, true});
  auto r = w.client_board.connect(bare, w.client_suite(), w.rng);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "no-suite");
}

TEST(Connection, RpcRoundTripThroughRegisteredService) {
  ChannelWorld w;
  minilang::ClassRegistry registry;
  mail::register_all(registry);
  auto server = minilang::instantiate(registry, "MailServer");
  w.server_board.register_service("mail", server);

  auto conn = w.connect();
  conn->call(Connection::End::kA, "mail", "registerAccount",
             {Value::string("alice"), Value::string("555"),
              Value::string("a@x")});
  const Value phone = conn->call(Connection::End::kA, "mail", "getPhone",
                                 {Value::string("alice")});
  EXPECT_EQ(phone.as_string(), "555");
  EXPECT_EQ(conn->stats().calls, 2u);
  EXPECT_GT(conn->stats().bytes, 0u);
  EXPECT_GT(conn->stats().last_rtt, 0);
}

TEST(Connection, ApplicationErrorsPropagate) {
  ChannelWorld w;
  minilang::ClassRegistry registry;
  mail::register_all(registry);
  w.server_board.register_service("mail",
                                  minilang::instantiate(registry, "MailServer"));
  auto conn = w.connect();
  EXPECT_THROW(conn->call(Connection::End::kA, "mail", "noSuchMethod", {}),
               minilang::EvalError);
  EXPECT_THROW(conn->call(Connection::End::kA, "ghost-service", "m", {}),
               minilang::EvalError);
  // The connection survives application errors.
  EXPECT_TRUE(conn->open());
}

TEST(Connection, FramesAreEncrypted) {
  ChannelWorld w;
  auto conn = w.connect();
  const util::Bytes plaintext = util::to_bytes("top secret mail body");
  const util::Bytes frame = conn->seal(Connection::End::kA, plaintext);
  // The plaintext must not appear in the framed bytes.
  const std::string frame_str(frame.begin(), frame.end());
  EXPECT_EQ(frame_str.find("top secret"), std::string::npos);
  auto unsealed = conn->unseal(Connection::End::kB, frame);
  ASSERT_TRUE(unsealed.ok());
  EXPECT_EQ(unsealed.value(), plaintext);
}

TEST(Connection, ReplayedFramesRejected) {
  ChannelWorld w;
  auto conn = w.connect();
  const util::Bytes frame =
      conn->seal(Connection::End::kA, util::to_bytes("once"));
  ASSERT_TRUE(conn->unseal(Connection::End::kB, frame).ok());
  auto replay = conn->unseal(Connection::End::kB, frame);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.error().code, "replay");
}

TEST(Connection, TamperedFramesRejected) {
  ChannelWorld w;
  auto conn = w.connect();
  util::Bytes frame = conn->seal(Connection::End::kA, util::to_bytes("data"));
  frame[10] ^= 0x01;
  auto r = conn->unseal(Connection::End::kB, frame);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "frame");
}

TEST(Connection, HeartbeatMeasuresRttAndCounts) {
  ChannelWorld w;
  auto conn = w.connect();
  conn->heartbeat();
  EXPECT_EQ(conn->stats().heartbeats, 2u);  // both directions
  // RTT = 2x link latency plus a little serialization time for the frame.
  EXPECT_GE(conn->stats().last_rtt, 2 * 5 * kMillisecond);
  EXPECT_LT(conn->stats().last_rtt, 2 * 6 * kMillisecond);
  EXPECT_TRUE(conn->open());
}

TEST(Connection, HeartbeatDetectsLivenessLoss) {
  ChannelWorld w;
  auto conn = w.connect();
  w.net.disconnect("client-host", "server-host");
  conn->heartbeat();
  EXPECT_FALSE(conn->open());
  EXPECT_NE(conn->close_reason().find("liveness"), std::string::npos);
}

TEST(Connection, RevocationSuspendsEndAndNotifies) {
  // Paper §4.3: a change in credentials invalidates the dRBAC proofs and
  // results in notification to the AuthorizationMonitors at either end.
  ChannelWorld w;
  minilang::ClassRegistry registry;
  mail::register_all(registry);
  w.server_board.register_service("mail",
                                  minilang::instantiate(registry, "MailServer"));
  auto conn = w.connect();

  std::vector<std::string> notifications;
  conn->set_authorization_listener(
      [&](Connection::End, const std::string& reason) {
        notifications.push_back(reason);
      });

  // Works before revocation.
  conn->call(Connection::End::kA, "mail", "getPhone", {Value::string("x")});

  w.repo.revoke(w.client_cred->serial);
  ASSERT_EQ(notifications.size(), 1u);
  EXPECT_NE(notifications[0].find("revoked"), std::string::npos);
  EXPECT_TRUE(conn->suspended(Connection::End::kA));

  // Requests from the suspended end are refused; the channel stays open.
  EXPECT_THROW(
      conn->call(Connection::End::kA, "mail", "getPhone", {Value::string("x")}),
      minilang::EvalError);
  EXPECT_TRUE(conn->open());
}

TEST(Connection, RevalidationRestoresService) {
  ChannelWorld w;
  minilang::ClassRegistry registry;
  mail::register_all(registry);
  w.server_board.register_service("mail",
                                  minilang::instantiate(registry, "MailServer"));
  auto conn = w.connect();
  w.repo.revoke(w.client_cred->serial);
  ASSERT_TRUE(conn->suspended(Connection::End::kA));

  // Revalidation without fresh credentials fails.
  EXPECT_FALSE(conn->revalidate(Connection::End::kA));

  // The Guard issues a fresh credential; revalidation then succeeds.
  auto fresh = drbac::issue(w.guard, Principal::of_entity(w.client),
                            role_of(w.guard, "Member"), {}, false, 0, 0,
                            w.repo.next_serial());
  w.repo.add(fresh);
  EXPECT_TRUE(conn->revalidate(Connection::End::kA));
  EXPECT_FALSE(conn->suspended(Connection::End::kA));
  conn->call(Connection::End::kA, "mail", "getPhone", {Value::string("x")});
  SUCCEED();
}

TEST(Connection, HeartbeatCatchesExpiredCredentials) {
  ChannelWorld w;
  // Re-issue the client credential with an expiry.
  w.client_cred = drbac::issue(w.guard, Principal::of_entity(w.client),
                               role_of(w.guard, "Member"), {}, false, 0,
                               /*expires=*/100 * kMillisecond,
                               w.repo.next_serial());
  auto conn = w.connect();
  EXPECT_FALSE(conn->suspended(Connection::End::kA));
  w.clock->set(200 * kMillisecond);  // past expiry
  conn->heartbeat();
  EXPECT_TRUE(conn->suspended(Connection::End::kA));
}

TEST(Connection, CloseIsIdempotentAndRefusesCalls) {
  ChannelWorld w;
  auto conn = w.connect();
  conn->close("test close");
  conn->close("second reason ignored");
  EXPECT_EQ(conn->close_reason(), "test close");
  EXPECT_THROW(conn->call(Connection::End::kA, "s", "m", {}),
               minilang::EvalError);
}

TEST(Connection, ConcurrentCallsAreSafe) {
  ChannelWorld w;
  minilang::ClassRegistry registry;
  mail::register_all(registry);
  auto server = minilang::instantiate(registry, "MailServer");
  w.server_board.register_service("mail", server);
  auto conn = w.connect();
  conn->call(Connection::End::kA, "mail", "registerAccount",
             {Value::string("u"), Value::string("p"), Value::string("e")});

  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        try {
          conn->call(Connection::End::kA, "mail", "getPhone",
                     {Value::string("u")});
        } catch (...) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(conn->stats().calls, 201u);
}

// ----------------------------------------------------------------- stubs

TEST(Stubs, ChannelStubDrivesViewRemoteInterface) {
  // End-to-end: a VIG-generated Partner view whose switchboard-bound
  // AddressI routes through a real secure connection.
  ChannelWorld w;
  minilang::ClassRegistry registry;
  mail::register_all(registry);
  views::Vig vig(&registry);
  auto def = views::ViewDefinition::from_xml(mail::view_xml_partner());
  ASSERT_TRUE(def.ok());
  ASSERT_TRUE(vig.generate(def.value()).ok());

  auto original = minilang::instantiate(registry, "MailClient");
  original->call("addAccount", {Value::string("alice"), Value::string("555"),
                                Value::string("a@x")});
  w.server_board.register_service("MailClient", original);

  auto conn = w.connect();
  auto view = minilang::instantiate(registry, "ViewMailClient_Partner");
  view->set_field("addressI_switch",
                  Value::object(std::make_shared<ChannelStub>(
                      conn, Connection::End::kA, "MailClient")));
  view->set_field("notesI_rmi",
                  Value::object(std::make_shared<RmiStub>(
                      &w.net, "client-host", &w.server_board, "MailClient")));
  views::attach_cache_manager(view, Value::null());

  EXPECT_EQ(view->call("getPhone", {Value::string("alice")}).as_string(),
            "555");
  view->call("addNote", {Value::string("note via rmi")});
  EXPECT_EQ(original->get_field("notes").as_list()->size(), 1u);
  EXPECT_GT(conn->stats().calls, 0u);
}

TEST(Stubs, RmiStubFailsWithoutRoute) {
  ChannelWorld w;
  minilang::ClassRegistry registry;
  mail::register_all(registry);
  w.server_board.register_service("mail",
                                  minilang::instantiate(registry, "MailServer"));
  RmiStub stub(&w.net, "client-host", &w.server_board, "mail");
  w.net.disconnect("client-host", "server-host");
  EXPECT_THROW(stub.call("getPhone", {Value::string("x")}),
               minilang::EvalError);
}

TEST(Stubs, RmiStubChargesNetwork) {
  ChannelWorld w;
  minilang::ClassRegistry registry;
  mail::register_all(registry);
  w.server_board.register_service("mail",
                                  minilang::instantiate(registry, "MailServer"));
  RmiStub stub(&w.net, "client-host", &w.server_board, "mail");
  const auto before = w.net.stats("client-host", "server-host").messages;
  stub.call("getPhone", {Value::string("x")});
  EXPECT_EQ(w.net.stats("client-host", "server-host").messages, before + 2);
}

// ---------------------------------------------------------- ReplayWindow

TEST(ReplayWindowTest, BasicAcceptAndDuplicate) {
  ReplayWindow win;
  EXPECT_FALSE(win.check_and_insert(0));  // seq 0 is never valid
  EXPECT_TRUE(win.check_and_insert(1));
  EXPECT_FALSE(win.check_and_insert(1));  // duplicate
  EXPECT_TRUE(win.check_and_insert(3));   // gap is fine
  EXPECT_TRUE(win.check_and_insert(2));   // late arrival inside the window
  EXPECT_FALSE(win.check_and_insert(2));  // duplicate within window
  EXPECT_EQ(win.max_seen(), 3u);
}

TEST(ReplayWindowTest, StaleSequenceRejected) {
  ReplayWindow win;
  const std::uint64_t head = ReplayWindow::kSize + 100;
  EXPECT_TRUE(win.check_and_insert(head));
  // Exactly kSize behind the head has fallen off the window — stale even
  // though it was never seen.
  EXPECT_FALSE(win.check_and_insert(head - ReplayWindow::kSize));
  // One inside the boundary is still acceptable.
  EXPECT_TRUE(win.check_and_insert(head - ReplayWindow::kSize + 1));
}

TEST(ReplayWindowTest, EvictionAtWindowBoundary) {
  ReplayWindow win;
  // Fill seqs 1..kSize, then slide by one: seq kSize+1 reuses the bitmap
  // slot of seq 1, which must have been evicted, while seq 2 (still in
  // range but already recorded) stays a duplicate.
  for (std::uint64_t s = 1; s <= ReplayWindow::kSize; ++s) {
    ASSERT_TRUE(win.check_and_insert(s)) << s;
  }
  EXPECT_TRUE(win.check_and_insert(ReplayWindow::kSize + 1));
  EXPECT_FALSE(win.check_and_insert(1));  // now stale
  EXPECT_FALSE(win.check_and_insert(2));  // in range, already seen
  EXPECT_FALSE(win.check_and_insert(ReplayWindow::kSize + 1));  // duplicate
}

TEST(ReplayWindowTest, FarAheadJumpClearsWindow) {
  ReplayWindow win;
  for (std::uint64_t s = 1; s <= 10; ++s) win.check_and_insert(s);
  // Jump several windows ahead: all old bits must be wiped, and the fresh
  // in-window range behind the new head must be accepted exactly once.
  const std::uint64_t head = 10 * ReplayWindow::kSize;
  EXPECT_TRUE(win.check_and_insert(head));
  EXPECT_EQ(win.max_seen(), head);
  EXPECT_TRUE(win.check_and_insert(head - 1));
  EXPECT_FALSE(win.check_and_insert(head - 1));
  EXPECT_FALSE(win.check_and_insert(10));  // ancient seq stays dead
  // The slot seq 5 used to occupy is reused by head - kSize + 5's hash
  // position; a fresh in-window seq mapping there must not be mistaken for
  // a replay after the wipe.
  EXPECT_TRUE(win.check_and_insert(head - ReplayWindow::kSize + 5));
}

TEST(ReplayWindowTest, ConnectionRejectsReplayedAndStaleFrames) {
  // End-to-end through the sealed channel: replaying a captured frame and
  // delivering one that has aged out of the window must both fail closed.
  ChannelWorld w;
  auto conn = w.connect();
  const util::Bytes payload = util::to_bytes("frame");
  const util::Bytes first = conn->seal(Connection::End::kA, payload);
  ASSERT_TRUE(conn->unseal(Connection::End::kB, first).ok());
  auto replay = conn->unseal(Connection::End::kB, first);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.error().code, "replay");

  // Age the captured frame out: push the window kSize frames ahead.
  util::Bytes stale = conn->seal(Connection::End::kA, payload);
  for (std::uint64_t i = 0; i < ReplayWindow::kSize; ++i) {
    ASSERT_TRUE(
        conn->unseal(Connection::End::kB, conn->seal(Connection::End::kA,
                                                     payload))
            .ok());
  }
  auto aged = conn->unseal(Connection::End::kB, stale);
  ASSERT_FALSE(aged.ok());
  EXPECT_EQ(aged.error().code, "replay");
}

}  // namespace
}  // namespace psf::switchboard
