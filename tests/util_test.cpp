#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "util/bytes.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"
#include "util/sim_clock.hpp"
#include "util/thread_pool.hpp"

namespace psf::util {
namespace {

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(to_hex(data), "0001abff7f");
  EXPECT_EQ(from_hex("0001abff7f"), data);
  EXPECT_EQ(from_hex("0001ABFF7F"), data);
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, HexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(Bytes, HexRejectsBadDigit) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(Bytes, StringRoundTrip) {
  EXPECT_EQ(to_string(to_bytes("hello")), "hello");
  EXPECT_EQ(to_bytes("").size(), 0u);
}

TEST(Bytes, AppendConcatenates) {
  Bytes dst = to_bytes("ab");
  append(dst, to_bytes("cd"));
  append(dst, "ef");
  EXPECT_EQ(to_string(dst), "abcdef");
}

TEST(Bytes, BigEndianRoundTrip32) {
  Bytes b;
  put_u32_be(b, 0xdeadbeef);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 0xde);
  EXPECT_EQ(get_u32_be(b, 0), 0xdeadbeefu);
}

TEST(Bytes, BigEndianRoundTrip64) {
  Bytes b;
  put_u64_be(b, 0x0123456789abcdefULL);
  ASSERT_EQ(b.size(), 8u);
  EXPECT_EQ(get_u64_be(b, 0), 0x0123456789abcdefULL);
}

TEST(Bytes, BigEndianOutOfRangeThrows) {
  Bytes b(3, 0);
  EXPECT_THROW(get_u32_be(b, 0), std::out_of_range);
}

TEST(Bytes, EqualCt) {
  EXPECT_TRUE(equal_ct(to_bytes("same"), to_bytes("same")));
  EXPECT_FALSE(equal_ct(to_bytes("same"), to_bytes("sa_e")));
  EXPECT_FALSE(equal_ct(to_bytes("short"), to_bytes("longer")));
}

TEST(Result, SuccessHoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, FailureHoldsError) {
  auto r = Result<int>::failure("nope", "did not work");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "nope");
  EXPECT_THROW(r.value(), std::runtime_error);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBytesLength) {
  Rng rng(11);
  EXPECT_EQ(rng.next_bytes(0).size(), 0u);
  EXPECT_EQ(rng.next_bytes(7).size(), 7u);
  EXPECT_EQ(rng.next_bytes(64).size(), 64u);
}

TEST(SimClock, AdvanceAndSet) {
  SimClock clock(100);
  EXPECT_EQ(clock.now(), 100);
  clock.advance(50);
  EXPECT_EQ(clock.now(), 150);
  clock.set(1000);
  EXPECT_EQ(clock.now(), 1000);
}

TEST(RealClock, MonotonicNonDecreasing) {
  RealClock clock;
  const SimTime a = clock.now();
  const SimTime b = clock.now();
  EXPECT_LE(a, b);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ZeroWorkersClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  auto f = pool.submit([] {});
  f.get();
}

}  // namespace
}  // namespace psf::util
