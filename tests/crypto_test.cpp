#include <gtest/gtest.h>

#include "crypto/biguint.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/dh.hpp"
#include "crypto/ed25519.hpp"
#include "crypto/fe25519.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sign.hpp"
#include "util/rng.hpp"

namespace psf::crypto {
namespace {

using util::Bytes;
using util::from_hex;
using util::to_bytes;
using util::to_hex;

std::string hex_of(const Digest256& d) {
  return to_hex(Bytes(d.begin(), d.end()));
}

// ---------------------------------------------------------------- SHA-256

TEST(Sha256, Fips180EmptyString) {
  EXPECT_EQ(hex_of(sha256({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Fips180Abc) {
  EXPECT_EQ(hex_of(sha256(to_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, Fips180TwoBlocks) {
  EXPECT_EQ(hex_of(sha256(to_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex_of(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const Bytes msg = to_bytes("incremental hashing must match one-shot");
  Sha256 h;
  for (std::size_t i = 0; i < msg.size(); ++i) h.update(&msg[i], 1);
  EXPECT_EQ(h.finish(), sha256(msg));
}

// ------------------------------------------------------------------ HMAC

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(hex_of(hmac_sha256(key, to_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(hex_of(hmac_sha256(to_bytes("Jefe"),
                               to_bytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes msg(50, 0xdd);
  EXPECT_EQ(hex_of(hmac_sha256(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(
      hex_of(hmac_sha256(
          key, to_bytes("Test Using Larger Than Block-Size Key - Hash Key First"))),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// --------------------------------------------------------------- ChaCha20

TEST(ChaCha20, Rfc8439BlockVector) {
  ChaChaKey key;
  for (int i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  ChaChaNonce nonce = {0x00, 0x00, 0x00, 0x09, 0x00, 0x00,
                       0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  const auto block = chacha20_block(key, nonce, 1);
  EXPECT_EQ(to_hex(Bytes(block.begin(), block.end())),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaCha20, Rfc8439EncryptionVector) {
  ChaChaKey key;
  for (int i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  ChaChaNonce nonce = {0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                       0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  const Bytes plaintext = to_bytes(
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.");
  const Bytes ciphertext = chacha20_xor(key, nonce, 1, plaintext);
  EXPECT_EQ(to_hex(ciphertext).substr(0, 64),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b");
  // Symmetric: decrypting recovers the plaintext.
  EXPECT_EQ(chacha20_xor(key, nonce, 1, ciphertext), plaintext);
}

TEST(ChaCha20, DifferentNonceDifferentStream) {
  ChaChaKey key{};
  ChaChaNonce n1{}, n2{};
  n2[0] = 1;
  const Bytes msg(64, 0);
  EXPECT_NE(chacha20_xor(key, n1, 0, msg), chacha20_xor(key, n2, 0, msg));
}

// ---------------------------------------------------------------- BigUInt

TEST(BigUInt, ByteRoundTrip) {
  Bytes le(32, 0);
  le[0] = 0xef;
  le[31] = 0x12;
  const BigUInt a = BigUInt::from_le_bytes(le);
  EXPECT_EQ(a.to_le_bytes32(), le);
}

TEST(BigUInt, AddSubInverse) {
  util::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const BigUInt a = BigUInt::from_le_bytes(rng.next_bytes(32));
    const BigUInt b = BigUInt::from_le_bytes(rng.next_bytes(32));
    const BigUInt sum = BigUInt::add(a, b);
    EXPECT_EQ(BigUInt::sub(sum, b), a);
    EXPECT_EQ(BigUInt::sub(sum, a), b);
  }
}

TEST(BigUInt, MulMatchesRepeatedAdd) {
  const BigUInt a(123456789);
  BigUInt acc;
  for (int i = 0; i < 37; ++i) acc = BigUInt::add(acc, a);
  EXPECT_EQ(BigUInt::mul256(a, BigUInt(37)), acc);
}

TEST(BigUInt, ModBasics) {
  const BigUInt m(97);
  EXPECT_EQ(BigUInt::mod(BigUInt(100), m), BigUInt(3));
  EXPECT_EQ(BigUInt::mod(BigUInt(97), m), BigUInt(0));
  EXPECT_EQ(BigUInt::mod(BigUInt(5), m), BigUInt(5));
}

TEST(BigUInt, ModDistributesOverMul) {
  util::Rng rng(6);
  const BigUInt m = group_order();
  for (int i = 0; i < 20; ++i) {
    const BigUInt a = BigUInt::mod(BigUInt::from_le_bytes(rng.next_bytes(32)), m);
    const BigUInt b = BigUInt::mod(BigUInt::from_le_bytes(rng.next_bytes(32)), m);
    // (a*b) mod m computed two ways.
    const BigUInt direct = BigUInt::mul_mod(a, b, m);
    const BigUInt via_full = BigUInt::mod(BigUInt::mul256(a, b), m);
    EXPECT_EQ(direct, via_full);
  }
}

TEST(BigUInt, NegMod) {
  const BigUInt m(97);
  EXPECT_EQ(BigUInt::neg_mod(BigUInt(0), m), BigUInt(0));
  EXPECT_EQ(BigUInt::add_mod(BigUInt(41), BigUInt::neg_mod(BigUInt(41), m), m),
            BigUInt(0));
}

TEST(BigUInt, BitLength) {
  EXPECT_EQ(BigUInt(0).bit_length(), 0u);
  EXPECT_EQ(BigUInt(1).bit_length(), 1u);
  EXPECT_EQ(BigUInt(255).bit_length(), 8u);
  EXPECT_EQ(BigUInt(256).bit_length(), 9u);
}

// ---------------------------------------------------------------- fe25519

TEST(Fe25519, ByteRoundTrip) {
  util::Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    Bytes b = rng.next_bytes(32);
    b[31] &= 0x7f;  // clear the ignored top bit
    // Values >= p are not canonical; skip them by clearing more top bits.
    b[31] &= 0x3f;
    const Fe f = fe_from_bytes(b);
    EXPECT_EQ(fe_to_bytes(f), b) << "iteration " << i;
  }
}

TEST(Fe25519, AddSubInverse) {
  util::Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    Bytes ab = rng.next_bytes(32);
    ab[31] &= 0x3f;
    Bytes bb = rng.next_bytes(32);
    bb[31] &= 0x3f;
    const Fe a = fe_from_bytes(ab);
    const Fe b = fe_from_bytes(bb);
    EXPECT_TRUE(fe_equal(fe_sub(fe_add(a, b), b), a));
  }
}

TEST(Fe25519, MulCommutativeAssociative) {
  util::Rng rng(8);
  for (int i = 0; i < 20; ++i) {
    Bytes ab = rng.next_bytes(32); ab[31] &= 0x3f;
    Bytes bb = rng.next_bytes(32); bb[31] &= 0x3f;
    Bytes cb = rng.next_bytes(32); cb[31] &= 0x3f;
    const Fe a = fe_from_bytes(ab), b = fe_from_bytes(bb), c = fe_from_bytes(cb);
    EXPECT_TRUE(fe_equal(fe_mul(a, b), fe_mul(b, a)));
    EXPECT_TRUE(fe_equal(fe_mul(fe_mul(a, b), c), fe_mul(a, fe_mul(b, c))));
  }
}

TEST(Fe25519, InvertIsInverse) {
  util::Rng rng(9);
  for (int i = 0; i < 10; ++i) {
    Bytes ab = rng.next_bytes(32);
    ab[31] &= 0x3f;
    ab[0] |= 1;  // ensure nonzero
    const Fe a = fe_from_bytes(ab);
    EXPECT_TRUE(fe_equal(fe_mul(a, fe_invert(a)), fe_one()));
  }
}

TEST(Fe25519, SqrtMinusOneSquaresToMinusOne) {
  const Fe i = fe_sqrt_m1();
  EXPECT_TRUE(fe_equal(fe_sq(i), fe_neg(fe_one())));
}

TEST(Fe25519, SqrtOfSquares) {
  util::Rng rng(10);
  for (int i = 0; i < 10; ++i) {
    Bytes ab = rng.next_bytes(32);
    ab[31] &= 0x3f;
    const Fe a = fe_from_bytes(ab);
    const Fe a2 = fe_sq(a);
    Fe root;
    ASSERT_TRUE(fe_sqrt(a2, root));
    EXPECT_TRUE(fe_equal(fe_sq(root), a2));
  }
}

TEST(Fe25519, NonResidueHasNoRoot) {
  // 2 is a non-residue mod p iff sqrt fails; check consistency instead:
  // for u = 2, either sqrt succeeds and root^2 == 2, or it fails.
  Fe root;
  const Fe two = fe_from_u64(2);
  if (fe_sqrt(two, root)) {
    EXPECT_TRUE(fe_equal(fe_sq(root), two));
  } else {
    SUCCEED();
  }
}

// ---------------------------------------------------------------- Ed25519

TEST(Ed25519, BasePointOnCurve) {
  EXPECT_TRUE(point_on_curve(point_base()));
}

TEST(Ed25519, BasePointMatchesRfc8032Encoding) {
  // The standard compressed base point; this cross-checks our derived
  // constants against the published curve.
  EXPECT_EQ(to_hex(point_encode(point_base())),
            "5866666666666666666666666666666666666666666666666666666666666666");
}

TEST(Ed25519, IdentityIsNeutral) {
  const Point b = point_base();
  EXPECT_TRUE(point_equal(point_add(b, point_identity()), b));
  EXPECT_TRUE(point_equal(point_add(point_identity(), b), b));
}

TEST(Ed25519, AdditionCommutes) {
  const Point b = point_base();
  const Point b2 = point_double(b);
  EXPECT_TRUE(point_equal(point_add(b, b2), point_add(b2, b)));
}

TEST(Ed25519, AdditionAssociates) {
  const Point b = point_base();
  const Point p = point_mul(BigUInt(7), b);
  const Point q = point_mul(BigUInt(11), b);
  const Point r = point_mul(BigUInt(13), b);
  EXPECT_TRUE(point_equal(point_add(point_add(p, q), r),
                          point_add(p, point_add(q, r))));
}

TEST(Ed25519, NegationCancels) {
  const Point p = point_mul(BigUInt(42), point_base());
  EXPECT_TRUE(point_is_identity(point_add(p, point_neg(p))));
}

TEST(Ed25519, ScalarMulDistributes) {
  const Point b = point_base();
  // (7 + 11) * B == 7*B + 11*B
  EXPECT_TRUE(point_equal(point_mul(BigUInt(18), b),
                          point_add(point_mul(BigUInt(7), b),
                                    point_mul(BigUInt(11), b))));
}

TEST(Ed25519, GroupOrderAnnihilatesBase) {
  EXPECT_TRUE(point_is_identity(point_mul(group_order(), point_base())));
}

TEST(Ed25519, OrderMinusOneGivesNegation) {
  const BigUInt l_minus_1 = BigUInt::sub(group_order(), BigUInt(1));
  EXPECT_TRUE(point_equal(point_mul(l_minus_1, point_base()),
                          point_neg(point_base())));
}

TEST(Ed25519, FixedBaseTableMatchesGenericMul) {
  util::Rng rng(77);
  // Edge scalars plus random ones.
  std::vector<BigUInt> scalars = {BigUInt(0), BigUInt(1), BigUInt(15),
                                  BigUInt(16), BigUInt(255),
                                  BigUInt::sub(group_order(), BigUInt(1))};
  for (int i = 0; i < 20; ++i) {
    scalars.push_back(scalar_from_wide_bytes(rng.next_bytes(64)));
  }
  for (const auto& k : scalars) {
    EXPECT_TRUE(point_equal(point_mul_base(k), point_mul(k, point_base())))
        << k.to_hex();
  }
}

TEST(Ed25519, EncodeDecodeRoundTrip) {
  util::Rng rng(12);
  for (int i = 0; i < 10; ++i) {
    const BigUInt k = scalar_from_wide_bytes(rng.next_bytes(64));
    const Point p = point_mul(k, point_base());
    Point decoded;
    ASSERT_TRUE(point_decode(point_encode(p), decoded));
    EXPECT_TRUE(point_equal(p, decoded));
  }
}

TEST(Ed25519, DecodeRejectsGarbage) {
  Point p;
  EXPECT_FALSE(point_decode(Bytes(31, 0xab), p));  // wrong length
}

// ------------------------------------------------------------- Signatures

TEST(Sign, RoundTrip) {
  util::Rng rng(100);
  const KeyPair kp = generate_keypair(rng);
  const Bytes msg = to_bytes("credential payload");
  const Signature sig = sign(kp, msg);
  EXPECT_TRUE(verify(kp.public_key, msg, sig));
}

TEST(Sign, RejectsTamperedMessage) {
  util::Rng rng(101);
  const KeyPair kp = generate_keypair(rng);
  const Bytes msg = to_bytes("credential payload");
  const Signature sig = sign(kp, msg);
  Bytes tampered = msg;
  tampered[0] ^= 1;
  EXPECT_FALSE(verify(kp.public_key, tampered, sig));
}

TEST(Sign, RejectsTamperedSignature) {
  util::Rng rng(102);
  const KeyPair kp = generate_keypair(rng);
  const Bytes msg = to_bytes("credential payload");
  Signature sig = sign(kp, msg);
  for (std::size_t i = 0; i < sig.bytes.size(); i += 7) {
    Signature bad = sig;
    bad.bytes[i] ^= 0x40;
    EXPECT_FALSE(verify(kp.public_key, msg, bad)) << "flip at byte " << i;
  }
}

TEST(Sign, RejectsWrongKey) {
  util::Rng rng(103);
  const KeyPair kp1 = generate_keypair(rng);
  const KeyPair kp2 = generate_keypair(rng);
  const Bytes msg = to_bytes("credential payload");
  EXPECT_FALSE(verify(kp2.public_key, msg, sign(kp1, msg)));
}

TEST(Sign, DeterministicNonce) {
  util::Rng rng(104);
  const KeyPair kp = generate_keypair(rng);
  const Bytes msg = to_bytes("same message");
  EXPECT_EQ(sign(kp, msg).bytes, sign(kp, msg).bytes);
}

TEST(Sign, FingerprintStable) {
  util::Rng rng(105);
  const KeyPair kp = generate_keypair(rng);
  EXPECT_EQ(kp.public_key.fingerprint().size(), 16u);
  EXPECT_EQ(kp.public_key.fingerprint(), kp.public_key.fingerprint());
}

// -------------------------------------------------------------------- DH

TEST(Dh, SharedSecretAgrees) {
  util::Rng rng(200);
  const DhKeyPair a = dh_generate(rng);
  const DhKeyPair b = dh_generate(rng);
  Bytes sa, sb;
  ASSERT_TRUE(dh_shared_secret(a, b.public_point, sa));
  ASSERT_TRUE(dh_shared_secret(b, a.public_point, sb));
  EXPECT_EQ(sa, sb);
}

TEST(Dh, DifferentPeersDifferentSecret) {
  util::Rng rng(201);
  const DhKeyPair a = dh_generate(rng);
  const DhKeyPair b = dh_generate(rng);
  const DhKeyPair c = dh_generate(rng);
  Bytes sab, sac;
  ASSERT_TRUE(dh_shared_secret(a, b.public_point, sab));
  ASSERT_TRUE(dh_shared_secret(a, c.public_point, sac));
  EXPECT_NE(sab, sac);
}

TEST(Dh, RejectsGarbagePeerKey) {
  util::Rng rng(202);
  const DhKeyPair a = dh_generate(rng);
  Bytes out;
  EXPECT_FALSE(dh_shared_secret(a, Bytes(5, 1), out));
}

TEST(Dh, DerivedKeysDifferByLabel) {
  util::Rng rng(203);
  const DhKeyPair a = dh_generate(rng);
  const DhKeyPair b = dh_generate(rng);
  Bytes secret;
  ASSERT_TRUE(dh_shared_secret(a, b.public_point, secret));
  EXPECT_NE(derive_channel_key(secret, "c2s"), derive_channel_key(secret, "s2c"));
}

}  // namespace
}  // namespace psf::crypto
