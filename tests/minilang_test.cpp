#include <gtest/gtest.h>

#include "minilang/interp.hpp"
#include "minilang/lexer.hpp"
#include "minilang/object.hpp"
#include "minilang/parser.hpp"
#include "minilang/value.hpp"

namespace psf::minilang {
namespace {

// ------------------------------------------------------------------ Lexer

TEST(Lexer, TokenizesIdentifiersAndKeywords) {
  auto r = lex("var x = foo;");
  ASSERT_TRUE(r.ok());
  const auto& t = r.value();
  ASSERT_EQ(t.size(), 6u);  // var x = foo ; END
  EXPECT_TRUE(t[0].is_keyword("var"));
  EXPECT_EQ(t[1].kind, TokenKind::kIdent);
  EXPECT_TRUE(t[2].is_punct("="));
  EXPECT_EQ(t[3].text, "foo");
}

TEST(Lexer, TokenizesTwoCharOperators) {
  auto r = lex("a == b != c <= d >= e && f || g");
  ASSERT_TRUE(r.ok());
  int two_char = 0;
  for (const auto& tok : r.value()) {
    if (tok.kind == TokenKind::kPunct && tok.text.size() == 2) ++two_char;
  }
  EXPECT_EQ(two_char, 6);
}

TEST(Lexer, StringEscapes) {
  auto r = lex(R"("a\nb\"c")");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[0].text, "a\nb\"c");
}

TEST(Lexer, SkipsComments) {
  auto r = lex("x; // comment here\ny;");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 5u);  // x ; y ; END
}

TEST(Lexer, RejectsUnterminatedString) {
  EXPECT_FALSE(lex("\"abc").ok());
}

TEST(Lexer, RejectsUnknownCharacter) {
  EXPECT_FALSE(lex("a @ b").ok());
}

TEST(Lexer, TracksLineNumbers) {
  auto r = lex("a;\nb;\nc;");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[4].line, 3u);  // 'c'
}

// ----------------------------------------------------------------- Parser

TEST(Parser, ParsesVarAndReturn) {
  auto r = parse_block_source("var x = 1 + 2; return x;");
  ASSERT_TRUE(r.ok()) << r.error().message;
  ASSERT_EQ(r.value().size(), 2u);
  EXPECT_EQ(r.value()[0]->kind, StmtKind::kVarDecl);
  EXPECT_EQ(r.value()[1]->kind, StmtKind::kReturn);
}

TEST(Parser, PrecedenceMultiplicationBindsTighter) {
  // 1 + 2 * 3 → Binary(+, 1, Binary(*, 2, 3))
  auto r = parse_expression_source("1 + 2 * 3");
  ASSERT_TRUE(r.ok());
  const Expr& e = *r.value();
  ASSERT_EQ(e.kind, ExprKind::kBinary);
  EXPECT_EQ(e.name, "+");
  EXPECT_EQ(e.children[1]->name, "*");
}

TEST(Parser, ParsesIfElseChain) {
  auto r = parse_block_source(
      "if (a == 1) { return 1; } else if (a == 2) { return 2; } else { return 3; }");
  ASSERT_TRUE(r.ok()) << r.error().message;
  const Stmt& s = *r.value()[0];
  EXPECT_EQ(s.kind, StmtKind::kIf);
  ASSERT_EQ(s.else_body.size(), 1u);
  EXPECT_EQ(s.else_body[0]->kind, StmtKind::kIf);
}

TEST(Parser, ParsesWhileLoop) {
  auto r = parse_block_source("var i = 0; while (i < 10) { i = i + 1; }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[1]->kind, StmtKind::kWhile);
}

TEST(Parser, ParsesMemberCallChains) {
  auto r = parse_expression_source("server.findAccount(name).getPhone()");
  ASSERT_TRUE(r.ok());
  const Expr& e = *r.value();
  EXPECT_EQ(e.kind, ExprKind::kMemberCall);
  EXPECT_EQ(e.name, "getPhone");
  EXPECT_EQ(e.children[0]->kind, ExprKind::kMemberCall);
  EXPECT_EQ(e.children[0]->name, "findAccount");
}

TEST(Parser, ParsesIndexing) {
  auto r = parse_expression_source("accounts[name]");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()->kind, ExprKind::kIndex);
}

TEST(Parser, RejectsInvalidAssignmentTarget) {
  EXPECT_FALSE(parse_block_source("1 + 2 = 3;").ok());
}

TEST(Parser, RejectsMissingSemicolon) {
  EXPECT_FALSE(parse_block_source("var x = 1").ok());
}

TEST(Parser, RejectsUnterminatedBlock) {
  EXPECT_FALSE(parse_block_source("if (a) { return 1;").ok());
}

TEST(Parser, CloneProducesEqualStructure) {
  auto r = parse_block_source("if (a < b) { c = a.m(1, \"x\"); } return c;");
  ASSERT_TRUE(r.ok());
  auto cloned = clone_block(r.value());
  ASSERT_EQ(cloned.size(), 2u);
  EXPECT_EQ(cloned[0]->kind, StmtKind::kIf);
  EXPECT_EQ(cloned[0]->body[0]->kind, StmtKind::kAssign);
  // Deep copy: distinct nodes.
  EXPECT_NE(cloned[0].get(), r.value()[0].get());
}

// ------------------------------------------------------------ Interpreter

TEST(Interp, EvaluatesArithmetic) {
  EXPECT_EQ(eval_standalone("1 + 2 * 3 - 4 / 2").as_int(), 5);
  EXPECT_EQ(eval_standalone("10 % 3").as_int(), 1);
  EXPECT_EQ(eval_standalone("-(3 + 4)").as_int(), -7);
}

TEST(Interp, EvaluatesComparisonsAndLogic) {
  EXPECT_TRUE(eval_standalone("1 < 2 && 2 <= 2 && 3 > 2 && 3 >= 3").as_bool());
  EXPECT_TRUE(eval_standalone("1 == 1 && 1 != 2").as_bool());
  EXPECT_TRUE(eval_standalone("false || true").as_bool());
  EXPECT_FALSE(eval_standalone("!true").as_bool());
}

TEST(Interp, StringConcatenation) {
  EXPECT_EQ(eval_standalone("\"a\" + \"b\" + 3").as_string(), "ab3");
}

TEST(Interp, StringComparison) {
  EXPECT_TRUE(eval_standalone("\"abc\" < \"abd\"").as_bool());
}

TEST(Interp, DivisionByZeroThrows) {
  EXPECT_THROW(eval_standalone("1 / 0"), EvalError);
  EXPECT_THROW(eval_standalone("1 % 0"), EvalError);
}

TEST(Interp, BuiltinListOperations) {
  EXPECT_EQ(eval_standalone("len(list(1, 2, 3))").as_int(), 3);
  EXPECT_TRUE(eval_standalone("contains(list(1, 2, 3), 2)").as_bool());
  EXPECT_FALSE(eval_standalone("contains(list(1, 2, 3), 9)").as_bool());
}

TEST(Interp, BuiltinStringOperations) {
  EXPECT_EQ(eval_standalone("substr(\"hello\", 1, 3)").as_string(), "ell");
  EXPECT_TRUE(eval_standalone("contains(\"hello\", \"ell\")").as_bool());
  EXPECT_EQ(eval_standalone("str(42)").as_string(), "42");
}

TEST(Interp, BuiltinBytesRoundTrip) {
  EXPECT_EQ(eval_standalone("text(bytes(\"data\"))").as_string(), "data");
  EXPECT_EQ(eval_standalone("len(bytes(\"data\"))").as_int(), 4);
}

TEST(Interp, BuiltinMinMaxAbs) {
  EXPECT_EQ(eval_standalone("min(3, 5)").as_int(), 3);
  EXPECT_EQ(eval_standalone("max(3, 5)").as_int(), 5);
  EXPECT_EQ(eval_standalone("abs(0 - 9)").as_int(), 9);
}

// Builds a small class for object tests:
//   class Counter { count; limit;
//     constructor(start) { count = start; limit = 10; }
//     increment(by) { count = count + by; return count; }
//     atLimit() { return count >= limit; }
//     private reset() { count = 0; }
//     callReset() { reset(); return count; } }
std::shared_ptr<ClassRegistry> make_counter_registry() {
  auto registry = std::make_shared<ClassRegistry>();
  auto cls = std::make_shared<ClassDef>();
  cls->name = "Counter";
  cls->fields.push_back({"count", "int", Value::integer(0)});
  cls->fields.push_back({"limit", "int", Value::integer(0)});

  auto add_method = [&](const std::string& name, std::vector<std::string> params,
                        const std::string& body, Visibility vis) {
    MethodDef m;
    m.name = name;
    m.params = std::move(params);
    m.visibility = vis;
    m.source = body;
    auto parsed = parse_block_source(body);
    if (!parsed.ok()) throw std::runtime_error(parsed.error().message);
    m.body = std::move(parsed).take();
    cls->methods.push_back(std::move(m));
  };
  add_method("constructor", {"start"}, "count = start; limit = 10;",
             Visibility::kPublic);
  add_method("increment", {"by"}, "count = count + by; return count;",
             Visibility::kPublic);
  add_method("atLimit", {}, "return count >= limit;", Visibility::kPublic);
  add_method("reset", {}, "count = 0;", Visibility::kPrivate);
  add_method("callReset", {}, "reset(); return count;", Visibility::kPublic);
  registry->register_class(cls);
  return registry;
}

TEST(Interp, ConstructorInitializesFields) {
  auto registry = make_counter_registry();
  auto obj = instantiate(*registry, "Counter", {Value::integer(5)});
  EXPECT_EQ(obj->get_field("count").as_int(), 5);
  EXPECT_EQ(obj->get_field("limit").as_int(), 10);
}

TEST(Interp, MethodsReadAndWriteFields) {
  auto registry = make_counter_registry();
  auto obj = instantiate(*registry, "Counter", {Value::integer(0)});
  EXPECT_EQ(obj->call("increment", {Value::integer(3)}).as_int(), 3);
  EXPECT_EQ(obj->call("increment", {Value::integer(4)}).as_int(), 7);
  EXPECT_FALSE(obj->call("atLimit", {}).as_bool());
  obj->call("increment", {Value::integer(5)});
  EXPECT_TRUE(obj->call("atLimit", {}).as_bool());
}

TEST(Interp, PrivateMethodsRejectedExternally) {
  auto registry = make_counter_registry();
  auto obj = instantiate(*registry, "Counter", {Value::integer(9)});
  EXPECT_THROW(obj->call("reset", {}), EvalError);
  // ... but callable from inside the class.
  EXPECT_EQ(obj->call("callReset", {}).as_int(), 0);
}

TEST(Interp, UnknownMethodThrows) {
  auto registry = make_counter_registry();
  auto obj = instantiate(*registry, "Counter", {Value::integer(0)});
  EXPECT_THROW(obj->call("nope", {}), EvalError);
}

TEST(Interp, WrongArityThrows) {
  auto registry = make_counter_registry();
  auto obj = instantiate(*registry, "Counter", {Value::integer(0)});
  EXPECT_THROW(obj->call("increment", {}), EvalError);
}

TEST(Interp, UndefinedVariableMentionsName) {
  auto registry = make_counter_registry();
  auto cls = std::make_shared<ClassDef>();
  cls->name = "Bad";
  MethodDef m;
  m.name = "go";
  m.source = "return missingVar;";
  m.body = std::move(parse_block_source(m.source)).take();
  cls->methods.push_back(std::move(m));
  registry->register_class(cls);
  auto obj = instantiate(*registry, "Bad");
  try {
    obj->call("go", {});
    FAIL() << "expected EvalError";
  } catch (const EvalError& e) {
    EXPECT_NE(std::string(e.what()).find("missingVar"), std::string::npos);
  }
}

TEST(Interp, InheritanceResolvesMethodsAndFields) {
  auto registry = make_counter_registry();
  auto derived = std::make_shared<ClassDef>();
  derived->name = "BoundedCounter";
  derived->super_name = "Counter";
  derived->fields.push_back({"bound", "int", Value::integer(3)});
  MethodDef m;
  m.name = "boundedIncrement";
  m.params = {"by"};
  m.source = "if (count + by > bound) { return count; } return increment(by);";
  m.body = std::move(parse_block_source(m.source)).take();
  derived->methods.push_back(std::move(m));
  registry->register_class(derived);

  auto obj = instantiate(*registry, "BoundedCounter", {Value::integer(0)});
  EXPECT_EQ(obj->call("boundedIncrement", {Value::integer(2)}).as_int(), 2);
  EXPECT_EQ(obj->call("boundedIncrement", {Value::integer(5)}).as_int(), 2);
  // Inherited method still callable directly.
  EXPECT_EQ(obj->call("increment", {Value::integer(1)}).as_int(), 3);
}

TEST(Interp, NativeMethodsCallCpp) {
  auto registry = std::make_shared<ClassRegistry>();
  auto cls = std::make_shared<ClassDef>();
  cls->name = "Native";
  MethodDef m;
  m.name = "twice";
  m.params = {"x"};
  m.is_native = true;
  m.native = [](Instance&, std::vector<Value> args) {
    return Value::integer(args[0].as_int() * 2);
  };
  cls->methods.push_back(std::move(m));
  registry->register_class(cls);
  auto obj = instantiate(*registry, "Native");
  EXPECT_EQ(obj->call("twice", {Value::integer(21)}).as_int(), 42);
}

TEST(Interp, MethodHooksFireAroundWrappedMethods) {
  struct CountingHooks : MethodHooks {
    int before = 0, after = 0;
    void before_method(Instance&, const MethodDef&) override { ++before; }
    void after_method(Instance&, const MethodDef&) override { ++after; }
  };
  auto registry = make_counter_registry();
  auto cls = registry->find_class("Counter");
  // Mark increment as coherence-wrapped on a copy of the class.
  auto wrapped = std::make_shared<ClassDef>();
  wrapped->name = "WrappedCounter";
  wrapped->super_name = "";
  wrapped->fields = cls->fields;
  for (const auto& m : cls->methods) {
    MethodDef copy = m.clone();
    if (copy.name == "increment") copy.coherence_wrapped = true;
    wrapped->methods.push_back(std::move(copy));
  }
  registry->register_class(wrapped);

  auto obj = instantiate(*registry, "WrappedCounter", {Value::integer(0)});
  auto hooks = std::make_shared<CountingHooks>();
  obj->set_hooks(hooks);
  obj->call("increment", {Value::integer(1)});
  obj->call("increment", {Value::integer(1)});
  obj->call("atLimit", {});  // not wrapped
  EXPECT_EQ(hooks->before, 2);
  EXPECT_EQ(hooks->after, 2);
}

TEST(Interp, StepLimitStopsInfiniteLoop) {
  auto registry = std::make_shared<ClassRegistry>();
  auto cls = std::make_shared<ClassDef>();
  cls->name = "Spinner";
  MethodDef m;
  m.name = "spin";
  m.source = "while (true) { }";
  m.body = std::move(parse_block_source(m.source)).take();
  cls->methods.push_back(std::move(m));
  registry->register_class(cls);
  auto obj = instantiate(*registry, "Spinner");
  InterpOptions opts;
  opts.max_steps = 10'000;
  EXPECT_THROW(invoke_method(obj, "spin", {}, true, opts), EvalError);
}

TEST(Interp, DepthLimitStopsRunawayRecursion) {
  auto registry = std::make_shared<ClassRegistry>();
  auto cls = std::make_shared<ClassDef>();
  cls->name = "Recurser";
  MethodDef m;
  m.name = "go";
  m.source = "return go();";
  m.body = std::move(parse_block_source(m.source)).take();
  cls->methods.push_back(std::move(m));
  registry->register_class(cls);
  auto obj = instantiate(*registry, "Recurser");
  EXPECT_THROW(obj->call("go", {}), EvalError);
}

TEST(Interp, MapsAndListsShareByReference) {
  auto registry = std::make_shared<ClassRegistry>();
  auto cls = std::make_shared<ClassDef>();
  cls->name = "Store";
  cls->fields.push_back({"data", "map", Value::null()});
  auto add = [&](const std::string& name, std::vector<std::string> params,
                 const std::string& body) {
    MethodDef m;
    m.name = name;
    m.params = std::move(params);
    m.source = body;
    m.body = std::move(parse_block_source(body)).take();
    cls->methods.push_back(std::move(m));
  };
  add("constructor", {}, "data = map();");
  add("set", {"k", "v"}, "put(data, k, v);");
  add("get", {"k"}, "return get(data, k);");
  add("size", {}, "return len(data);");
  registry->register_class(cls);

  auto obj = instantiate(*registry, "Store");
  obj->call("set", {Value::string("a"), Value::integer(1)});
  obj->call("set", {Value::string("b"), Value::integer(2)});
  EXPECT_EQ(obj->call("get", {Value::string("a")}).as_int(), 1);
  EXPECT_EQ(obj->call("size", {}).as_int(), 2);
}

TEST(Interp, MemberAccessOnMaps) {
  auto registry = std::make_shared<ClassRegistry>();
  auto cls = std::make_shared<ClassDef>();
  cls->name = "M";
  MethodDef m;
  m.name = "go";
  m.source =
      "var mes = map(); mes.subject = \"hi\"; mes.body = \"text\"; "
      "return mes.subject + \":\" + mes.body;";
  m.body = std::move(parse_block_source(m.source)).take();
  cls->methods.push_back(std::move(m));
  registry->register_class(cls);
  auto obj = instantiate(*registry, "M");
  EXPECT_EQ(obj->call("go", {}).as_string(), "hi:text");
}

TEST(Interp, ObjectsPassedBetweenInstances) {
  // instance A holds a reference to instance B and calls through it.
  auto registry = make_counter_registry();
  auto holder = std::make_shared<ClassDef>();
  holder->name = "Holder";
  holder->fields.push_back({"target", "Counter", Value::null()});
  auto add = [&](const std::string& name, std::vector<std::string> params,
                 const std::string& body) {
    MethodDef m;
    m.name = name;
    m.params = std::move(params);
    m.source = body;
    m.body = std::move(parse_block_source(body)).take();
    holder->methods.push_back(std::move(m));
  };
  add("setTarget", {"t"}, "target = t;");
  add("bump", {}, "return target.increment(10);");
  registry->register_class(holder);

  auto counter = instantiate(*registry, "Counter", {Value::integer(1)});
  auto h = instantiate(*registry, "Holder");
  h->call("setTarget", {Value::object(counter)});
  EXPECT_EQ(h->call("bump", {}).as_int(), 11);
  EXPECT_EQ(counter->get_field("count").as_int(), 11);
}

// -------------------------------------------------- for / break / continue

std::shared_ptr<Instance> one_method(const std::string& body) {
  static std::vector<std::shared_ptr<ClassRegistry>> keep_alive;
  auto registry = std::make_shared<ClassRegistry>();
  keep_alive.push_back(registry);
  auto cls = std::make_shared<ClassDef>();
  cls->name = "L";
  MethodDef m;
  m.name = "go";
  m.source = body;
  auto parsed = parse_block_source(body);
  if (!parsed.ok()) throw std::runtime_error(parsed.error().message);
  m.body = std::move(parsed).take();
  cls->methods.push_back(std::move(m));
  registry->register_class(cls);
  return instantiate(*registry, "L");
}

TEST(Loops, ForLoopSums) {
  auto obj = one_method(
      "var acc = 0; for (var i = 1; i <= 10; i = i + 1) { acc = acc + i; } "
      "return acc;");
  EXPECT_EQ(obj->call("go", {}).as_int(), 55);
}

TEST(Loops, ForWithEmptyClauses) {
  auto obj = one_method(
      "var i = 0; for (;;) { i = i + 1; if (i == 5) { break; } } return i;");
  EXPECT_EQ(obj->call("go", {}).as_int(), 5);
}

TEST(Loops, BreakExitsWhile) {
  auto obj = one_method(
      "var i = 0; while (true) { i = i + 1; if (i >= 3) { break; } } "
      "return i;");
  EXPECT_EQ(obj->call("go", {}).as_int(), 3);
}

TEST(Loops, ContinueSkipsIteration) {
  auto obj = one_method(
      "var acc = 0; for (var i = 0; i < 10; i = i + 1) { "
      "if (i % 2 == 0) { continue; } acc = acc + i; } return acc;");
  EXPECT_EQ(obj->call("go", {}).as_int(), 25);  // 1+3+5+7+9
}

TEST(Loops, ContinueRunsForUpdate) {
  // A `continue` inside a for must still execute the update clause (no
  // infinite loop).
  auto obj = one_method(
      "var n = 0; for (var i = 0; i < 4; i = i + 1) { continue; } "
      "return n;");
  EXPECT_EQ(obj->call("go", {}).as_int(), 0);
}

TEST(Loops, NestedLoopsBreakInnerOnly) {
  auto obj = one_method(
      "var acc = 0; for (var i = 0; i < 3; i = i + 1) { "
      "  for (var j = 0; j < 10; j = j + 1) { "
      "    if (j == 2) { break; } acc = acc + 1; } } return acc;");
  EXPECT_EQ(obj->call("go", {}).as_int(), 6);
}

TEST(Loops, ReturnInsideForPropagates) {
  auto obj = one_method(
      "for (var i = 0; i < 100; i = i + 1) { if (i == 7) { return i; } } "
      "return 0 - 1;");
  EXPECT_EQ(obj->call("go", {}).as_int(), 7);
}

TEST(Loops, BreakOutsideLoopIsAnError) {
  auto obj = one_method("break;");
  EXPECT_THROW(obj->call("go", {}), EvalError);
}

TEST(Loops, ForParseErrors) {
  EXPECT_FALSE(parse_block_source("for (var i = 0 i < 3; ) { }").ok());
  EXPECT_FALSE(parse_block_source("for (;;) i;").ok());
  EXPECT_FALSE(parse_block_source("break").ok());  // missing ';'
}

TEST(Interp, StandaloneUnknownFunctionThrows) {
  EXPECT_THROW(eval_standalone("nosuchfn(1)"), EvalError);
}

TEST(Interp, BuiltinNamesNonEmptyAndContainCore) {
  const auto& names = builtin_names();
  EXPECT_FALSE(names.empty());
  EXPECT_NE(std::find(names.begin(), names.end(), "len"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "push"), names.end());
}

}  // namespace
}  // namespace psf::minilang
