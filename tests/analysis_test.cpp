// Tests for the psf::analysis engine (DESIGN.md §4g): one positive and one
// negative fixture per pass (tests/fixtures/analysis/), a golden-file test
// pinning the psf_analyze --json wire format, the VIG integration contract
// (all diagnostics in one run), and the credential-flow pass against a real
// dRBAC repository.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>

#include "analysis/analyzer.hpp"
#include "drbac/credential.hpp"
#include "drbac/repository.hpp"
#include "mail/components.hpp"
#include "util/rng.hpp"
#include "views/vig.hpp"

namespace psf::analysis {
// Registration points for the built-in pass groups (defined in the
// passes_*.cpp units; redeclared here so the determinism test can build a
// registry holding the same passes in reversed order).
void register_dataflow_passes(PassRegistry& registry);
void register_member_passes(PassRegistry& registry);
void register_coherence_passes(PassRegistry& registry);
}  // namespace psf::analysis

namespace psf {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string fixture_path(const std::string& name) {
  return std::string(PSF_ANALYSIS_FIXTURE_DIR) + "/" + name;
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

class AnalysisFixtureTest : public ::testing::Test {
 protected:
  void SetUp() override { mail::register_all(registry_); }

  analysis::AnalysisResult analyze_fixture(
      const std::string& name, const analysis::AnalysisOptions& options = {}) {
    auto def = views::ViewDefinition::from_xml(read_file(fixture_path(name)));
    EXPECT_TRUE(def.ok()) << name << ": " << def.error().message;
    return analysis::analyze(def.value(), registry_, options);
  }

  static std::set<std::string> codes(const analysis::AnalysisResult& result) {
    std::set<std::string> out;
    for (const auto& d : result.diagnostics) out.insert(d.code);
    return out;
  }

  static bool has_code(const analysis::AnalysisResult& result,
                       const std::string& code,
                       analysis::Severity severity) {
    for (const auto& d : result.diagnostics) {
      if (d.code == code && d.severity == severity) return true;
    }
    return false;
  }

  minilang::ClassRegistry registry_;
};

// ------------------------------------------------- per-pass fixture pairs

TEST_F(AnalysisFixtureTest, ReachabilityGoodFixtureIsClean) {
  auto result = analyze_fixture("good_reachability.xml");
  EXPECT_EQ(result.errors, 0u);
  EXPECT_EQ(result.warnings, 0u);
}

TEST_F(AnalysisFixtureTest, ReachabilityBadFixtureFlagsVarAndCall) {
  auto result = analyze_fixture("bad_reachability.xml");
  EXPECT_TRUE(has_code(result, "PSA020", analysis::Severity::kError));
  EXPECT_TRUE(has_code(result, "PSA021", analysis::Severity::kError));
  EXPECT_GE(result.errors, 2u);
}

TEST_F(AnalysisFixtureTest, UseBeforeInitGoodFixtureIsClean) {
  // `var` inside a branch is visible to later statements (linear walk), so
  // the escape pattern must not be flagged.
  auto result = analyze_fixture("good_use_before_init.xml");
  EXPECT_EQ(result.errors, 0u);
  EXPECT_EQ(result.warnings, 0u);
}

TEST_F(AnalysisFixtureTest, UseBeforeInitBadFixtureFlagsBothShapes) {
  auto result = analyze_fixture("bad_use_before_init.xml");
  // Reading a non-field local before its `var` is an error (EvalError at
  // runtime); reading a field-shadowing local before its `var` silently
  // reads the field, so it is a warning.
  EXPECT_TRUE(has_code(result, "PSA030", analysis::Severity::kError));
  EXPECT_TRUE(has_code(result, "PSA031", analysis::Severity::kWarning));
}

TEST_F(AnalysisFixtureTest, DeadMembersGoodFixtureIsClean) {
  auto result = analyze_fixture("good_dead_members.xml");
  EXPECT_EQ(result.errors, 0u);
  EXPECT_EQ(result.warnings, 0u);
}

TEST_F(AnalysisFixtureTest, DeadMembersBadFixtureWarnsOnly) {
  auto result = analyze_fixture("bad_dead_members.xml");
  EXPECT_TRUE(has_code(result, "PSA035", analysis::Severity::kWarning));
  EXPECT_TRUE(has_code(result, "PSA036", analysis::Severity::kWarning));
  EXPECT_EQ(result.errors, 0u);  // dead members never block generation
}

TEST_F(AnalysisFixtureTest, ExposureGoodFixtureIsClean) {
  auto result = analyze_fixture("good_exposure.xml");
  EXPECT_EQ(result.errors, 0u);
  EXPECT_EQ(result.warnings, 0u);
}

TEST_F(AnalysisFixtureTest, ExposureBadFixtureFlagsRemovedAndDeepCalls) {
  auto result = analyze_fixture("bad_exposure.xml");
  EXPECT_TRUE(has_code(result, "PSA040", analysis::Severity::kError));
  EXPECT_TRUE(has_code(result, "PSA041", analysis::Severity::kError));
}

TEST_F(AnalysisFixtureTest, ExposureFlagsRemoteCustomizationTouchingLocalState) {
  auto result = analyze_fixture("bad_remote_custom.xml");
  EXPECT_TRUE(has_code(result, "PSA042", analysis::Severity::kError));
}

TEST_F(AnalysisFixtureTest, CoherenceGoodFixtureIsClean) {
  auto result = analyze_fixture("good_coherence.xml");
  EXPECT_EQ(result.errors, 0u);
  EXPECT_EQ(result.warnings, 0u);
}

TEST_F(AnalysisFixtureTest, CoherenceBadFixtureFlagsAllThreeShapes) {
  auto result = analyze_fixture("bad_coherence.xml");
  EXPECT_TRUE(has_code(result, "PSA060", analysis::Severity::kWarning));
  EXPECT_TRUE(has_code(result, "PSA061", analysis::Severity::kWarning));
  EXPECT_TRUE(has_code(result, "PSA062", analysis::Severity::kError));
}

TEST_F(AnalysisFixtureTest, StructuralBadFixtureReportsEverythingInOneRun) {
  // Satellite (b): one run surfaces every structural problem, not just the
  // first one hit.
  auto result = analyze_fixture("bad_structural.xml");
  auto seen = codes(result);
  EXPECT_TRUE(seen.count("PSA002"));  // unknown interface
  EXPECT_TRUE(seen.count("PSA005"));  // duplicate method
  EXPECT_TRUE(seen.count("PSA009"));  // missing constructor
  EXPECT_GE(result.errors, 3u);
}

// ------------------------------------------------------------ in-tree views

TEST_F(AnalysisFixtureTest, AllInTreeMailViewsAnalyzeClean) {
  const std::pair<const char*, std::string> views[] = {
      {"partner", mail::view_xml_partner()},
      {"member", mail::view_xml_member()},
      {"anonymous", mail::view_xml_anonymous()},
      {"cache", mail::view_xml_mail_server_cache()},
      {"replica", mail::view_xml_client_replica()},
  };
  for (const auto& [label, xml] : views) {
    auto def = views::ViewDefinition::from_xml(xml);
    ASSERT_TRUE(def.ok()) << label;
    auto result = analysis::analyze(def.value(), registry_);
    EXPECT_EQ(result.errors, 0u) << label;
    EXPECT_EQ(result.warnings, 0u) << label;
  }
}

TEST_F(AnalysisFixtureTest, ExampleXmlFilesMatchBuiltinAccessors) {
  // examples/views/*.xml are what CI lints; they must not drift from the
  // authoritative strings compiled into the mail application.
  const std::pair<const char*, std::string> views[] = {
      {"partner.xml", mail::view_xml_partner()},
      {"member.xml", mail::view_xml_member()},
      {"anonymous.xml", mail::view_xml_anonymous()},
      {"mail_server_cache.xml", mail::view_xml_mail_server_cache()},
      {"client_replica.xml", mail::view_xml_client_replica()},
  };
  for (const auto& [file, xml] : views) {
    std::string on_disk = read_file(std::string(PSF_EXAMPLE_VIEWS_DIR) + "/" +
                                    file);
    EXPECT_EQ(trim(on_disk), trim(xml)) << file << " drifted from the "
                                        << "builtin definition";
  }
}

// ------------------------------------------------------------- golden JSON

TEST_F(AnalysisFixtureTest, JsonReportMatchesGoldenFile) {
  // Pins the psf_analyze --json wire format: key order, span fields, and
  // diagnostic ordering are all load-bearing for CI consumers.
  auto result = analyze_fixture("bad_reachability.xml");
  std::string expected = trim(read_file(fixture_path(
      "golden_bad_reachability.json")));
  EXPECT_EQ("[" + result.json() + "]", expected);
}

// --------------------------------------------------------- member stripping

TEST_F(AnalysisFixtureTest, StrippedMatchesDeadMemberDiagnostics) {
  // The `stripped` report and the PSA035/PSA036 warnings come from the same
  // compute_dead_members fact base; their member sets must be identical.
  auto result = analyze_fixture("bad_dead_members.xml");
  std::set<std::string> warned;
  for (const auto& d : result.diagnostics) {
    if (d.code == "PSA035" || d.code == "PSA036") warned.insert(d.span.where);
  }
  EXPECT_FALSE(warned.empty());
  EXPECT_EQ(std::set<std::string>(result.stripped.begin(),
                                  result.stripped.end()),
            warned);
}

TEST_F(AnalysisFixtureTest, VigStripsExactlyTheReportedDeadMemberSet) {
  auto def = views::ViewDefinition::from_xml(
      read_file(fixture_path("bad_dead_members.xml")));
  ASSERT_TRUE(def.ok());
  auto report = analysis::analyze(def.value(), registry_);
  ASSERT_FALSE(report.stripped.empty());

  views::Vig vig(&registry_);
  auto cls = vig.generate(def.value());
  ASSERT_TRUE(cls.ok());
  EXPECT_EQ(cls.value()->stripped_members, report.stripped);
  EXPECT_EQ(vig.stats().members_stripped, report.stripped.size());
  EXPECT_EQ(cls.value()->find_method("orphan"), nullptr);
  EXPECT_EQ(cls.value()->find_field("unusedField"), nullptr);
}

TEST_F(AnalysisFixtureTest, VigStripOptOutKeepsDeadMembers) {
  auto def = views::ViewDefinition::from_xml(
      read_file(fixture_path("bad_dead_members.xml")));
  ASSERT_TRUE(def.ok());
  views::VigOptions options;
  options.strip = false;
  views::Vig vig(&registry_, options);
  auto cls = vig.generate(def.value());
  ASSERT_TRUE(cls.ok());
  EXPECT_TRUE(cls.value()->stripped_members.empty());
  EXPECT_EQ(vig.stats().members_stripped, 0u);
  EXPECT_NE(cls.value()->find_method("orphan"), nullptr);
  EXPECT_NE(cls.value()->find_field("unusedField"), nullptr);
}

// ----------------------------------------------------------- pass registry

TEST(PassRegistry, GlobalRegistryHasAllBuiltinPasses) {
  auto& registry = analysis::global_pass_registry();
  const char* names[] = {"field-reachability", "use-before-init",
                         "dead-members",       "exposure",
                         "coherence",          "credential-flow"};
  for (const char* name : names) {
    EXPECT_NE(registry.find(name), nullptr) << name;
  }
  EXPECT_GE(registry.passes().size(), 6u);
}

TEST(PassRegistry, AnalyzeHonorsCustomRegistry) {
  minilang::ClassRegistry classes;
  mail::register_all(classes);
  auto def = views::ViewDefinition::from_xml(
      read_file(fixture_path("bad_reachability.xml")));
  ASSERT_TRUE(def.ok());

  // An empty registry silences every pass: only structural model building
  // runs (and this fixture is structurally fine).
  analysis::PassRegistry empty;
  analysis::AnalysisOptions options;
  options.registry = &empty;
  auto result = analysis::analyze(def.value(), classes, options);
  EXPECT_EQ(result.errors, 0u);
}

// ----------------------------------------------------------- determinism

TEST(Determinism, RepeatedAnalysisIsByteIdentical) {
  // CI diffs --json output across runs; any map-iteration or pass-order
  // leak in the report would show up as flaky golden failures.
  const char* fixtures[] = {"bad_reachability.xml", "bad_use_before_init.xml",
                            "bad_dead_members.xml", "bad_exposure.xml",
                            "bad_coherence.xml"};
  for (const char* name : fixtures) {
    minilang::ClassRegistry classes;
    mail::register_all(classes);
    auto def = views::ViewDefinition::from_xml(read_file(fixture_path(name)));
    ASSERT_TRUE(def.ok()) << name;
    const std::string first = analysis::analyze(def.value(), classes).json();
    const std::string second = analysis::analyze(def.value(), classes).json();
    EXPECT_EQ(first, second) << name;
    ASSERT_GT(analysis::analyze(def.value(), classes).diagnostics.size(), 1u)
        << name << " no longer exercises multi-diagnostic ordering";
  }
}

TEST(Determinism, DiagnosticOrderIsSortedNotRegistrationOrder) {
  // Same pass set registered backwards must yield the same report: the
  // analyzer sorts diagnostics by (code, view, where, line), so consumers
  // can diff reports across builds that register passes differently.
  analysis::PassRegistry reversed;
  analysis::register_coherence_passes(reversed);
  analysis::register_member_passes(reversed);
  analysis::register_dataflow_passes(reversed);

  const char* fixtures[] = {"bad_reachability.xml", "bad_use_before_init.xml",
                            "bad_dead_members.xml", "bad_exposure.xml",
                            "bad_coherence.xml"};
  for (const char* name : fixtures) {
    minilang::ClassRegistry classes;
    mail::register_all(classes);
    auto def = views::ViewDefinition::from_xml(read_file(fixture_path(name)));
    ASSERT_TRUE(def.ok()) << name;
    // The default registry additionally holds credential-flow, which is
    // silent without a SecurityContext — so the reports must match exactly.
    const std::string default_order =
        analysis::analyze(def.value(), classes).json();
    analysis::AnalysisOptions options;
    options.registry = &reversed;
    const std::string reversed_order =
        analysis::analyze(def.value(), classes, options).json();
    EXPECT_EQ(default_order, reversed_order) << name;
  }
}

TEST(Determinism, DiagnosticsAreSortedByStableKey) {
  minilang::ClassRegistry classes;
  mail::register_all(classes);
  auto def = views::ViewDefinition::from_xml(
      read_file(fixture_path("bad_coherence.xml")));
  ASSERT_TRUE(def.ok());
  auto result = analysis::analyze(def.value(), classes);
  ASSERT_GT(result.diagnostics.size(), 1u);
  for (std::size_t i = 1; i < result.diagnostics.size(); ++i) {
    const auto& a = result.diagnostics[i - 1];
    const auto& b = result.diagnostics[i];
    EXPECT_LE(std::tie(a.code, a.span.view, a.span.where, a.span.line),
              std::tie(b.code, b.span.view, b.span.where, b.span.line));
  }
}

// -------------------------------------------------------- VIG integration

TEST(VigIntegration, ReportsMultipleDistinctDiagnosticsInOneRun) {
  minilang::ClassRegistry classes;
  mail::register_all(classes);
  views::Vig vig(&classes);

  auto def = views::ViewDefinition::from_xml(
      read_file(std::string(PSF_ANALYSIS_FIXTURE_DIR) +
                "/bad_reachability.xml"));
  ASSERT_TRUE(def.ok());
  auto generated = vig.generate(def.value());
  EXPECT_FALSE(generated.ok());

  std::set<std::string> error_codes;
  for (const auto& d : vig.diagnostics()) {
    if (d.is_error) error_codes.insert(d.code);
  }
  // The whole point of the shared engine: both problems surface in ONE
  // generate() call instead of fix-one-rerun-find-the-next.
  EXPECT_TRUE(error_codes.count("PSA020"));
  EXPECT_TRUE(error_codes.count("PSA021"));
  EXPECT_GE(error_codes.size(), 2u);
}

// -------------------------------------------------------- credential flow

class CredentialFlowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mail::register_all(registry_);
    auto def = views::ViewDefinition::from_xml(mail::view_xml_partner());
    ASSERT_TRUE(def.ok());
    def_ = std::make_unique<views::ViewDefinition>(def.value());
  }

  analysis::AnalysisResult analyze_with(const analysis::SecurityContext& sec) {
    analysis::AnalysisOptions options;
    options.security = &sec;
    return analysis::analyze(*def_, registry_, options);
  }

  static bool has_psa070(const analysis::AnalysisResult& result) {
    for (const auto& d : result.diagnostics) {
      if (d.code == "PSA070") return true;
    }
    return false;
  }

  util::Rng rng_{7};
  minilang::ClassRegistry registry_;
  std::unique_ptr<views::ViewDefinition> def_;
};

TEST_F(CredentialFlowTest, ProvableRoleIsSilent) {
  using namespace drbac;
  Entity mail_corp = Entity::create("Mail", rng_);
  Entity alice = Entity::create("Alice", rng_);
  Repository repo;
  RoleRef partner{mail_corp.name, mail_corp.fingerprint(), "Partner"};
  repo.add(issue(mail_corp, Principal::of_entity(alice), partner, {}, false,
                 0, 0, repo.next_serial()));

  analysis::SecurityContext sec;
  sec.repository = &repo;
  sec.rules.push_back({partner, def_->name});
  EXPECT_FALSE(has_psa070(analyze_with(sec)));
}

TEST_F(CredentialFlowTest, ProvableThroughRoleChainIsSilent) {
  using namespace drbac;
  Entity mail_corp = Entity::create("Mail", rng_);
  Entity comp = Entity::create("Comp", rng_);
  Entity bob = Entity::create("Bob", rng_);
  Repository repo;
  RoleRef partner{mail_corp.name, mail_corp.fingerprint(), "Partner"};
  RoleRef member{comp.name, comp.fingerprint(), "Member"};
  // Comp.Member -> Mail.Partner, Bob -> Comp.Member: two-hop proof.
  repo.add(issue(mail_corp, Principal::of_role(comp, "Member"), partner, {},
                 false, 0, 0, repo.next_serial()));
  repo.add(issue(comp, Principal::of_entity(bob), member, {}, false, 0, 0,
                 repo.next_serial()));

  analysis::SecurityContext sec;
  sec.repository = &repo;
  sec.rules.push_back({partner, def_->name});
  EXPECT_FALSE(has_psa070(analyze_with(sec)));
}

TEST_F(CredentialFlowTest, UnprovableRoleWarns) {
  using namespace drbac;
  Entity mail_corp = Entity::create("Mail", rng_);
  Repository repo;  // empty: nothing can prove Mail.Partner
  RoleRef partner{mail_corp.name, mail_corp.fingerprint(), "Partner"};

  analysis::SecurityContext sec;
  sec.repository = &repo;
  sec.rules.push_back({partner, def_->name});
  auto result = analyze_with(sec);
  EXPECT_TRUE(has_psa070(result));
  EXPECT_EQ(result.errors, 0u);  // deploy-time wiring gap, not a code bug
}

TEST_F(CredentialFlowTest, RevokedDelegationDoesNotProve) {
  using namespace drbac;
  Entity mail_corp = Entity::create("Mail", rng_);
  Entity alice = Entity::create("Alice", rng_);
  Repository repo;
  RoleRef partner{mail_corp.name, mail_corp.fingerprint(), "Partner"};
  auto d = issue(mail_corp, Principal::of_entity(alice), partner, {}, false,
                 0, 0, repo.next_serial());
  repo.add(d);
  repo.revoke(d->serial);

  analysis::SecurityContext sec;
  sec.repository = &repo;
  sec.rules.push_back({partner, def_->name});
  EXPECT_TRUE(has_psa070(analyze_with(sec)));
}

TEST_F(CredentialFlowTest, RulesForOtherViewsAreIgnored) {
  using namespace drbac;
  Entity mail_corp = Entity::create("Mail", rng_);
  Repository repo;
  RoleRef partner{mail_corp.name, mail_corp.fingerprint(), "Partner"};

  analysis::SecurityContext sec;
  sec.repository = &repo;
  sec.rules.push_back({partner, "SomeOtherView"});
  EXPECT_FALSE(has_psa070(analyze_with(sec)));
}

// ------------------------------------------------------------- diagnostics

TEST(Diagnostic, JsonEscapesSpecials) {
  analysis::Diagnostic d{analysis::Severity::kWarning, "PSA999",
                         analysis::Span{"V\"iew", "method \\x", 3},
                         "line1\nline2", "tab\there"};
  std::string json = d.json();
  EXPECT_NE(json.find("V\\\"iew"), std::string::npos);
  EXPECT_NE(json.find("method \\\\x"), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2"), std::string::npos);
  EXPECT_NE(json.find("tab\\there"), std::string::npos);
}

TEST(Diagnostic, DisplayIncludesCodeSpanAndHint) {
  analysis::Diagnostic d{analysis::Severity::kError, "PSA020",
                         analysis::Span{"Partner", "method deliver", 4},
                         "uses variable 'x'", "declare it"};
  std::string text = d.display();
  EXPECT_NE(text.find("PSA020"), std::string::npos);
  EXPECT_NE(text.find("method deliver:4"), std::string::npos);
  EXPECT_NE(text.find("fix: declare it"), std::string::npos);
}

}  // namespace
}  // namespace psf
