// EventLoop / TimerWheel / Poller unit tests (ISSUE 7): readiness dispatch,
// timer-wheel expiry order, cross-thread posting, and poller fallback. These
// run in the ASan/UBSan/TSan matrix — every wait is a bounded poll, never a
// bare sleep assertion, so slow sanitized runs stay green.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "switchboard/event_loop.hpp"

#ifdef __linux__
#include <unistd.h>
#endif

namespace psf::switchboard {
namespace {

using namespace std::chrono_literals;

/// Spin (with short sleeps) until `pred` holds or ~5s elapse.
template <typename Pred>
bool eventually(Pred pred) {
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

// ------------------------------------------------------------------ Poller

TEST(Poller, CreateHonorsAvailability) {
  auto poller = Poller::create(poller_kind_from_env());
  ASSERT_NE(poller, nullptr);
  EXPECT_TRUE(poller_available(poller->kind()));
  // poll(2) must exist everywhere: it is the portable floor.
  EXPECT_TRUE(poller_available(PollerKind::kPoll));
  auto fallback = Poller::create(PollerKind::kPoll);
  ASSERT_NE(fallback, nullptr);
  EXPECT_EQ(fallback->kind(), PollerKind::kPoll);
}

#ifdef __linux__
TEST(Poller, ReportsReadinessForBothKinds) {
  for (const PollerKind kind : {PollerKind::kEpoll, PollerKind::kPoll}) {
    auto poller = Poller::create(kind);
    ASSERT_NE(poller, nullptr);
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    ASSERT_TRUE(poller->add(fds[0], /*token=*/7, /*want_read=*/true,
                            /*want_write=*/false));
    std::vector<PollerEvent> events;
    EXPECT_EQ(poller->wait(0, events), 0) << "no data yet";

    ASSERT_EQ(::write(fds[1], "x", 1), 1);
    events.clear();
    ASSERT_EQ(poller->wait(1000, events), 1);
    EXPECT_EQ(events[0].token, 7u);
    EXPECT_TRUE(events[0].readable);

    ASSERT_TRUE(poller->del(fds[0]));
    events.clear();
    EXPECT_EQ(poller->wait(0, events), 0) << "deregistered fd still reported";
    ::close(fds[0]);
    ::close(fds[1]);
  }
}
#endif

// -------------------------------------------------------------- TimerWheel

TEST(TimerWheel, FiresInDeadlineOrder) {
  TimerWheel wheel(/*tick_ns=*/1'000'000, /*slots=*/256);
  std::vector<int> order;
  const std::uint64_t now = 0;
  // Scheduled out of order; same-deadline ties break by id (schedule order).
  wheel.schedule(now, 30'000'000, [&] { order.push_back(3); });
  wheel.schedule(now, 10'000'000, [&] { order.push_back(1); });
  wheel.schedule(now, 20'000'000, [&] { order.push_back(2); });
  wheel.schedule(now, 10'000'000, [&] { order.push_back(11); });
  EXPECT_EQ(wheel.armed(), 4u);

  EXPECT_EQ(wheel.advance(now + 9'000'000), 0u) << "nothing due yet";
  EXPECT_EQ(wheel.advance(now + 15'000'000), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 11}));
  EXPECT_EQ(wheel.advance(now + 40'000'000), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 11, 2, 3}));
  EXPECT_EQ(wheel.armed(), 0u);
  EXPECT_EQ(wheel.fired(), 4u);
}

TEST(TimerWheel, WrapsAroundTheWheel) {
  // Deadlines several laps out must not fire early when their slot passes.
  TimerWheel wheel(/*tick_ns=*/1'000'000, /*slots=*/16);
  int fired = 0;
  wheel.schedule(0, 100'000'000, [&] { ++fired; });  // ~6 laps on 16 slots
  std::uint64_t now = 0;
  for (int i = 0; i < 99; ++i) {
    now += 1'000'000;
    wheel.advance(now);
  }
  EXPECT_EQ(fired, 0) << "fired a lap early";
  wheel.advance(101'000'000);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, CancelPreventsFiring) {
  TimerWheel wheel;
  int fired = 0;
  const auto id = wheel.schedule(0, 5'000'000, [&] { ++fired; });
  wheel.schedule(0, 5'000'000, [&] { ++fired; });
  EXPECT_TRUE(wheel.cancel(id));
  EXPECT_FALSE(wheel.cancel(id)) << "double cancel";
  EXPECT_FALSE(wheel.cancel(9999)) << "unknown id";
  wheel.advance(10'000'000);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, NextDelayTracksNearestDeadline) {
  TimerWheel wheel(/*tick_ns=*/1'000'000);
  EXPECT_FALSE(wheel.next_delay(0).has_value());
  const auto far = wheel.schedule(0, 50'000'000, [] {});
  wheel.schedule(0, 20'000'000, [] {});
  auto delay = wheel.next_delay(0);
  ASSERT_TRUE(delay.has_value());
  EXPECT_LE(*delay, 20'000'000u);
  // A cancelled timer may leave a stale heap entry: the reported delay must
  // never be LATER than a real armed deadline (early wakeups are benign).
  EXPECT_TRUE(wheel.cancel(far));
  wheel.advance(25'000'000);
  EXPECT_EQ(wheel.armed(), 0u);
}

TEST(TimerWheel, RescheduleFromCallbackDoesNotSpin) {
  TimerWheel wheel(/*tick_ns=*/1'000'000);
  int fired = 0;
  std::function<void()> again = [&] {
    ++fired;
    if (fired < 3) wheel.schedule(10'000'000, 0, again);  // due immediately
  };
  wheel.schedule(0, 10'000'000, again);
  // A timer re-armed for the current advance must wait for the next one.
  EXPECT_EQ(wheel.advance(10'000'000), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(wheel.advance(11'000'000), 1u);
  EXPECT_EQ(fired, 2);
}

// --------------------------------------------------------------- EventLoop

TEST(EventLoop, RunsPostedTasksInOrder) {
  EventLoop loop;
  loop.start();
  std::vector<int> order;
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    loop.post([&, i] {
      order.push_back(i);  // single consumer: the loop thread
      done.fetch_add(1);
    });
  }
  ASSERT_TRUE(eventually([&] { return done.load() == 100; }));
  loop.stop();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
  EXPECT_GE(loop.stats().tasks_run, 100u);
}

TEST(EventLoop, RunOnLoopExecutesInlineOnLoopThread) {
  EventLoop loop;
  loop.start();
  std::atomic<bool> inline_ran{false};
  std::atomic<bool> posted_ran{false};
  loop.post([&] {
    // Already on the loop thread: run_on_loop must not self-deadlock.
    loop.run_on_loop([&] { inline_ran.store(true); });
    EXPECT_TRUE(inline_ran.load());
  });
  loop.run_on_loop([&] { posted_ran.store(true); });  // from outside: posts
  ASSERT_TRUE(eventually([&] { return inline_ran.load() && posted_ran.load(); }));
  loop.stop();
}

TEST(EventLoop, StopDrainsPendingTasks) {
  EventLoop loop;
  loop.start();
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) loop.post([&] { ran.fetch_add(1); });
  loop.stop();
  EXPECT_EQ(ran.load(), 50);
}

TEST(EventLoop, TimersFireAndCancelOnTheLoop) {
  EventLoop loop;
  loop.start();
  std::atomic<int> fired{0};
  loop.run_on_loop([&] {
    loop.schedule(1'000'000, [&] { fired.fetch_add(1); });
    const auto doomed = loop.schedule(2'000'000, [&] { fired.fetch_add(100); });
    loop.cancel_timer(doomed);
  });
  ASSERT_TRUE(eventually([&] { return fired.load() == 1; }));
  std::this_thread::sleep_for(10ms);  // give the cancelled timer a chance
  EXPECT_EQ(fired.load(), 1);
  loop.stop();
  EXPECT_GE(loop.stats().timers_fired, 1u);
}

TEST(EventLoop, PeriodicTimerReschedulesItself) {
  EventLoop loop;
  loop.start();
  std::atomic<int> beats{0};
  std::function<void()> beat = [&] {
    if (beats.fetch_add(1) + 1 < 5) loop.schedule(1'000'000, beat);
  };
  loop.run_on_loop([&] { loop.schedule(1'000'000, beat); });
  ASSERT_TRUE(eventually([&] { return beats.load() >= 5; }));
  loop.stop();
}

#ifdef __linux__
TEST(EventLoop, DispatchesFdReadiness) {
  for (const PollerKind kind : {PollerKind::kEpoll, PollerKind::kPoll}) {
    EventLoop loop(kind);
    loop.start();
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    std::atomic<int> reads{0};
    loop.run_on_loop([&] {
      ASSERT_TRUE(loop.add_fd(fds[0], true, false,
                              [&](bool readable, bool, bool) {
                                if (!readable) return;
                                char buf[8];
                                ASSERT_GT(::read(fds[0], buf, sizeof buf), 0);
                                reads.fetch_add(1);
                              }));
    });
    ASSERT_EQ(::write(fds[1], "a", 1), 1);
    ASSERT_TRUE(eventually([&] { return reads.load() == 1; }));
    ASSERT_EQ(::write(fds[1], "b", 1), 1);
    ASSERT_TRUE(eventually([&] { return reads.load() == 2; }));
    loop.run_on_loop([&] { loop.del_fd(fds[0]); });
    loop.stop();
    EXPECT_GE(loop.stats().fd_dispatches, 2u);
    ::close(fds[0]);
    ::close(fds[1]);
  }
}
#endif

TEST(EventLoop, StatsCountIterationsAndWakeups) {
  EventLoop loop;
  loop.start();
  std::atomic<bool> ran{false};
  loop.post([&] { ran.store(true); });
  ASSERT_TRUE(eventually([&] { return ran.load(); }));
  loop.stop();
  const auto stats = loop.stats();
  EXPECT_GE(stats.iterations, 1u);
  EXPECT_GE(stats.wakeups, 1u);
  EXPECT_GE(stats.tasks_run, 1u);
}

TEST(EventLoop, AnatomyHistogramsRecordIterationPhases) {
  // Iteration anatomy (ISSUE 9): every loop pass times its poll wait; task
  // batches record run time and per-task post->run sojourn (the loop.lag SLO
  // input); fired timers record deadline->fire slip. Process-wide metrics,
  // so assert deltas.
  auto& poll_wait = obs::histogram("psf.loop.poll_wait_us");
  auto& task_run = obs::histogram("psf.loop.task_run_us");
  auto& sojourn = obs::histogram("psf.loop.task_sojourn_us");
  auto& slip = obs::histogram("psf.loop.timer_slip_us");
  const std::uint64_t poll_wait_before = poll_wait.count();
  const std::uint64_t task_run_before = task_run.count();
  const std::uint64_t sojourn_before = sojourn.count();
  const std::uint64_t slip_before = slip.count();

  EventLoop loop;
  loop.start();
  std::atomic<int> tasks{0};
  loop.post([&] { tasks.fetch_add(1); });
  loop.post([&] { tasks.fetch_add(1); });
  std::atomic<bool> fired{false};
  loop.post(
      [&] { loop.schedule(1'000'000, [&] { fired.store(true); }); });
  ASSERT_TRUE(eventually([&] { return tasks.load() == 2 && fired.load(); }));
  loop.stop();

  EXPECT_GT(poll_wait.count(), poll_wait_before);
  EXPECT_GT(task_run.count(), task_run_before);
  // One sojourn observation per task, not per batch.
  EXPECT_GE(sojourn.count(), sojourn_before + 3);
  EXPECT_GE(slip.count(), slip_before + 1);
}

TEST(EventLoop, WorkerIndexedLoopExportsPerWorkerGauges) {
  // A loop given a worker index (Reactor numbers its pool) exports its Stats
  // as psf.loop.<n>.* gauges, refreshed every iteration.
  EventLoop loop;
  loop.set_worker_index(42);
  EXPECT_EQ(loop.worker_index(), 42);
  loop.start();
  std::atomic<bool> ran{false};
  loop.post([&] { ran.store(true); });
  ASSERT_TRUE(eventually([&] { return ran.load(); }));
  loop.stop();

  const auto stats = loop.stats();
  EXPECT_GE(obs::gauge("psf.loop.42.iterations").value(),
            static_cast<std::int64_t>(1));
  EXPECT_EQ(obs::gauge("psf.loop.42.tasks_run").value(),
            static_cast<std::int64_t>(stats.tasks_run));
  EXPECT_GE(obs::gauge("psf.loop.42.wakeups").value(),
            static_cast<std::int64_t>(1));
}

TEST(EventLoop, UnindexedLoopExportsNoPerWorkerGauges) {
  // Ad-hoc loops (worker_index < 0) must not mint gauge families; the name
  // would collide across every unindexed loop in the process.
  EventLoop loop;
  EXPECT_EQ(loop.worker_index(), -1);
  loop.start();
  std::atomic<bool> ran{false};
  loop.post([&] { ran.store(true); });
  ASSERT_TRUE(eventually([&] { return ran.load(); }));
  loop.stop();
  // No "psf.loop.-1.*" family appeared in the registry snapshot.
  const auto snapshot = obs::Registry::instance().snapshot();
  for (const auto& entry : snapshot.entries) {
    EXPECT_EQ(entry.name.find("psf.loop.-1."), std::string::npos)
        << entry.name;
  }
}

TEST(EventLoop, EnvSelectsPoller) {
  // Unknown values degrade to the platform default instead of aborting.
  const PollerKind kind = poller_kind_from_env();
  EXPECT_TRUE(poller_available(kind));
}

}  // namespace
}  // namespace psf::switchboard
