// Edge and failure paths of the PSF framework, two-way RPC on Switchboard
// channels, and the method-level access control extension
// (<Removes_Methods>).
#include <gtest/gtest.h>

#include "mail/scenario.hpp"
#include "psf/framework.hpp"
#include "switchboard/authorizer.hpp"
#include "views/vig.hpp"

namespace psf {
namespace {

using drbac::Principal;
using mail::Scenario;
using minilang::Value;

// --------------------------------------------- method-level access control

TEST(RemovesMethods, DropsIndividualMethodsFromInterfaces) {
  minilang::ClassRegistry registry;
  mail::register_all(registry);
  views::Vig vig(&registry);
  auto def = views::ViewDefinition::from_xml(R"(
<View name="ViewNoMeetings">
  <Represents name="MailClient"/>
  <Restricts>
    <Interface name="NotesI" type="local"/>
    <Interface name="AddressI" type="switchboard"/>
  </Restricts>
  <Removes_Methods>
    <Method name="addMeeting"/>
    <Method name="getPhone"/>
  </Removes_Methods>
  <Adds_Methods>
    <MSign>constructor()</MSign><MBody>notes = list();</MBody>
  </Adds_Methods>
</View>)");
  ASSERT_TRUE(def.ok()) << def.error().message;
  EXPECT_EQ(def.value().removed_methods.size(), 2u);
  auto cls = vig.generate(def.value());
  ASSERT_TRUE(cls.ok()) << cls.error().message;
  // addNote stays, addMeeting is gone; getEmail stub stays, getPhone gone.
  EXPECT_NE(cls.value()->find_method("addNote"), nullptr);
  EXPECT_EQ(cls.value()->find_method("addMeeting"), nullptr);
  EXPECT_NE(cls.value()->find_method("getEmail"), nullptr);
  EXPECT_EQ(cls.value()->find_method("getPhone"), nullptr);

  auto view = minilang::instantiate(registry, "ViewNoMeetings");
  EXPECT_THROW(view->call("addMeeting", {Value::string("x")}),
               minilang::EvalError);
  view->call("addNote", {Value::string("fine")});
}

TEST(RemovesMethods, RoundTripsThroughXml) {
  views::ViewDefinition def;
  def.name = "V";
  def.represents = "C";
  def.removed_methods = {"a", "b"};
  auto again = views::ViewDefinition::from_xml(def.to_xml());
  // from_xml requires Represents; build a proper one instead.
  views::ViewDefinition full;
  full.name = "V";
  full.represents = "MailClient";
  full.removed_methods = {"addMeeting"};
  auto parsed = views::ViewDefinition::from_xml(full.to_xml());
  ASSERT_TRUE(parsed.ok()) << parsed.error().message;
  EXPECT_EQ(parsed.value().removed_methods,
            std::vector<std::string>{"addMeeting"});
  (void)again;
}

TEST(RemovesMethods, UnknownRemovalDiagnosed) {
  minilang::ClassRegistry registry;
  mail::register_all(registry);
  views::Vig vig(&registry);
  auto def = views::ViewDefinition::from_xml(R"(
<View name="V">
  <Represents name="MailClient"/>
  <Restricts><Interface name="NotesI" type="local"/></Restricts>
  <Removes_Methods><Method name="noSuchMethod"/></Removes_Methods>
  <Adds_Methods><MSign>constructor()</MSign><MBody>notes = list();</MBody></Adds_Methods>
</View>)");
  ASSERT_TRUE(def.ok());
  auto cls = vig.generate(def.value());
  ASSERT_FALSE(cls.ok());
  EXPECT_NE(cls.error().message.find("noSuchMethod"), std::string::npos);
}

// ----------------------------------------------------------- two-way RPC

TEST(TwoWayRpc, ServerEndCallsClientService) {
  // Paper §4.3: "Switchboard connections provide a two-way procedure-call
  // (RPC) interface" — the B end can invoke services registered on A.
  util::Rng rng(88);
  auto clock = std::make_shared<util::SimClock>();
  switchboard::Network net;
  net.connect("a", "b", {util::kMillisecond, 0, true});
  switchboard::Switchboard a("a", &net, clock);
  switchboard::Switchboard b("b", &net, clock);

  minilang::ClassRegistry registry;
  mail::register_all(registry);
  auto client_inbox = minilang::instantiate(registry, "MailClient");
  a.register_service("callback", client_inbox);  // service on the CLIENT

  switchboard::AuthorizationSuite sa, sb;
  sa.identity = drbac::Entity::create("A", rng);
  sa.authorizer = std::make_shared<switchboard::AcceptAllAuthorizer>();
  sb.identity = drbac::Entity::create("B", rng);
  sb.authorizer = std::make_shared<switchboard::AcceptAllAuthorizer>();
  auto conn = switchboard::Connection::establish(a, b, sa, sb, rng).value();

  // The server pushes a message to the client's inbox.
  conn->call(switchboard::Connection::End::kB, "callback", "deliver",
             {mail::make_message("server", "client", "push", "hello")});
  EXPECT_EQ(client_inbox->get_field("inbox").as_list()->size(), 1u);
  // Both directions in flight on the same connection.
  b.register_service("echo", client_inbox);
  conn->call(switchboard::Connection::End::kA, "echo", "deliver",
             {mail::make_message("x", "y", "z", "w")});
  EXPECT_EQ(conn->stats().calls, 2u);
}

// ---------------------------------------------------- framework edge cases

struct ScenarioFixture : ::testing::Test {
  Scenario s = mail::build_scenario();
};

TEST_F(ScenarioFixture, UnknownServiceRejected) {
  framework::ClientRequest request;
  request.identity = s.alice;
  request.client_node = Scenario::kNyPc;
  request.service = "no-such-service";
  auto session = s.psf->request(request);
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.error().code, "no-service");
}

TEST_F(ScenarioFixture, UnknownClientNodeRejected) {
  auto request = s.request_for(s.alice, "mars-base");
  auto session = s.psf->request(request);
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.error().code, "no-node");
}

TEST_F(ScenarioFixture, UnreachableClientNodeFailsPlanning) {
  s.psf->add_node("island", "Comp.NY");
  auto session = s.psf->request(s.request_for(s.alice, "island"));
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.error().code, "no-plan");
}

TEST_F(ScenarioFixture, LatencyBoundSelectsNearProvider) {
  framework::QoS qos;
  qos.max_latency_ms = 5;  // WAN is 40 ms; only local service can comply
  auto session = s.psf->request(s.request_for(s.bob, Scenario::kSdPc, qos));
  ASSERT_TRUE(session.ok()) << session.error().message;
  EXPECT_EQ(session.value().provider_node, Scenario::kSdPc);
}

TEST_F(ScenarioFixture, CpuExhaustionEventuallyRejectsDeployments) {
  // Each session consumes view CPU on the client node (capacity 100,
  // view_cpu 10, replica 20 + cipher 5): repeated requests must eventually
  // fail with a CPU-related planning error rather than misbehave.
  framework::QoS qos;
  qos.min_bandwidth_kbps = 1000;
  int successes = 0;
  util::Result<framework::ClientSession> last =
      util::Result<framework::ClientSession>::failure("none", "none");
  for (int i = 0; i < 20; ++i) {
    last = s.psf->request(s.request_for(s.bob, Scenario::kSdPc, qos));
    if (!last.ok()) break;
    ++successes;
  }
  EXPECT_GT(successes, 2);
  EXPECT_LT(successes, 20);
  ASSERT_FALSE(last.ok());
  EXPECT_NE(last.error().message.find("CPU"), std::string::npos);
}

TEST_F(ScenarioFixture, DefineServiceValidatesInputs) {
  framework::ServiceConfig config;
  config.name = "broken";
  config.domain = "Comp.NY";
  config.origin_node = "mars-base";
  config.origin_class = "MailServer";
  auto r = s.psf->define_service(config);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "bad-service");

  config.origin_node = Scenario::kNyServer;
  config.origin_class = "NoSuchClass";
  auto r2 = s.psf->define_service(config);
  ASSERT_FALSE(r2.ok());
  EXPECT_NE(r2.error().message.find("NoSuchClass"), std::string::npos);
}

TEST_F(ScenarioFixture, GuardsAreSingletonsPerDomain) {
  framework::Guard& again = s.psf->create_guard("Comp.NY");
  EXPECT_EQ(&again, s.ny);
  EXPECT_EQ(s.psf->guard("Comp.NY"), s.ny);
  EXPECT_EQ(s.psf->guard("Nowhere"), nullptr);
}

TEST_F(ScenarioFixture, NodeCpuAccounting) {
  framework::Node* node = s.psf->node(Scenario::kNyPc);
  const std::int64_t used = node->cpu_used();
  EXPECT_TRUE(node->reserve_cpu(10));
  EXPECT_EQ(node->cpu_used(), used + 10);
  node->release_cpu(10);
  EXPECT_EQ(node->cpu_used(), used);
  EXPECT_FALSE(node->reserve_cpu(node->cpu_capacity() + 1));
}

TEST(GuardCache, HitsMissesAndRevocationInvalidation) {
  drbac::Repository repo;
  util::Rng rng(9);
  framework::Guard guard("Comp.NY", &repo, rng);
  guard.add_access_rule("Member", "MemberView");
  guard.set_default_view("AnonView");
  drbac::Entity alice = guard.create_principal("Alice");
  auto cred = guard.grant(Principal::of_entity(alice), "Member");
  guard.enable_decision_cache();

  auto first = guard.select_view(Principal::of_entity(alice), 0);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(guard.cache_stats().misses, 1u);
  auto second = guard.select_view(Principal::of_entity(alice), 0);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().view_name, "MemberView");
  EXPECT_EQ(guard.cache_stats().hits, 1u);

  // Revocation invalidates: the next lookup re-proves and now maps to the
  // default view.
  repo.revoke(cred->serial);
  EXPECT_EQ(guard.cache_stats().invalidations, 1u);
  auto third = guard.select_view(Principal::of_entity(alice), 0);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third.value().view_name, "AnonView");
  EXPECT_EQ(guard.cache_stats().misses, 2u);
}

TEST(GuardCache, DisabledByDefault) {
  drbac::Repository repo;
  util::Rng rng(10);
  framework::Guard guard("D", &repo, rng);
  guard.set_default_view("V");
  drbac::Entity user = guard.create_principal("U");
  (void)guard.select_view(Principal::of_entity(user), 0);
  (void)guard.select_view(Principal::of_entity(user), 0);
  EXPECT_EQ(guard.cache_stats().hits, 0u);
  EXPECT_EQ(guard.cache_stats().misses, 0u);
}

TEST_F(ScenarioFixture, ExpiredClientCredentialDeniedAtRequestTime) {
  // A wallet whose only membership credential has expired maps to the
  // default (anonymous) view instead of the member view.
  drbac::Entity frank = s.ny->create_principal("Frank");
  auto short_lived = s.ny->grant(Principal::of_entity(frank), "Member", {},
                                 /*issued=*/0, /*expires=*/10);
  s.psf->clock()->set(100);  // past expiry
  framework::ClientRequest request;
  request.identity = frank;
  request.credentials = {short_lived};
  request.client_node = Scenario::kNyPc;
  request.service = "mail";
  auto session = s.psf->request(request);
  ASSERT_TRUE(session.ok()) << session.error().message;
  EXPECT_EQ(session.value().view_name, "ViewMailClient_Anonymous");
}

}  // namespace
}  // namespace psf
