// Flight recorder + health plane (ISSUE 4 tentpole, parts a and b).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "obs/export.hpp"
#include "obs/health.hpp"
#include "obs/journal.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace psf::obs {
namespace {

namespace j = journal;

// ---------------------------------------------------------------- journal

TEST(Journal, EmitDrainRoundTripsTypedFields) {
  j::reset();
  j::emit(j::Subsystem::kSwitchboard, j::kSwEstablish, j::tag("a-host"),
          j::tag("b-host"), 777);
  j::emit(j::Subsystem::kDrbac, j::kDrEpochBump, 5, 42, 1);

  const auto events = j::drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].subsystem,
            static_cast<std::uint16_t>(j::Subsystem::kSwitchboard));
  EXPECT_EQ(events[0].code, j::kSwEstablish);
  EXPECT_EQ(events[0].args[0], j::tag("a-host"));
  EXPECT_EQ(events[0].args[1], j::tag("b-host"));
  EXPECT_EQ(events[0].args[2], 777u);
  EXPECT_EQ(events[0].args[3], 0u);  // unused arity stays zero
  EXPECT_EQ(events[1].code, j::kDrEpochBump);
  EXPECT_LE(events[0].t_ns, events[1].t_ns);
  // Same emitting thread for both.
  EXPECT_EQ(events[0].thread, events[1].thread);
}

TEST(Journal, EmitCapturesCurrentSpanContext) {
  j::reset();
  TraceId trace = 0;
  SpanId span = 0;
  {
    ScopedSpan s("test.journal");
    trace = s.context().trace_id;
    span = s.context().span_id;
    j::emit(j::Subsystem::kPsf, j::kPsRequestOk, 1);
  }
  j::emit(j::Subsystem::kPsf, j::kPsRequestFailed, 2);  // outside any span

  const auto events = j::drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].trace_id, trace);
  EXPECT_EQ(events[0].span_id, span);
  EXPECT_EQ(events[1].trace_id, 0u);
}

TEST(Journal, DrainMergesThreadsInTimeOrder) {
  j::reset();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  {
    util::ThreadPool pool(kThreads);
    std::vector<std::future<void>> done;
    for (int t = 0; t < kThreads; ++t) {
      done.push_back(pool.submit([t] {
        for (int i = 0; i < kPerThread; ++i) {
          j::emit(j::Subsystem::kObs, 99, static_cast<std::uint64_t>(t),
                  static_cast<std::uint64_t>(i));
        }
      }));
    }
    for (auto& f : done) f.get();
  }
  const auto events = j::drain();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].t_ns, events[i].t_ns) << "merge out of order";
  }
  // Each thread's own events kept their per-thread emit order.
  std::vector<std::uint64_t> next_index(kThreads, 0);
  for (const auto& e : events) {
    const auto t = static_cast<std::size_t>(e.args[0]);
    ASSERT_LT(t, next_index.size());
    EXPECT_EQ(e.args[1], next_index[t]);
    ++next_index[t];
  }
}

TEST(Journal, OverflowAbsorbsBurstWithSoftNotHardDrops) {
  j::reset();
  const std::uint64_t emitted_before = j::emitted();
  const std::uint64_t soft_before = j::soft_dropped();
  const std::uint64_t hard_before = j::hard_dropped();
  constexpr std::uint64_t kTotal = 5000;  // > one ring (4096)
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    j::emit(j::Subsystem::kObs, 99, i);
  }
  EXPECT_EQ(j::emitted() - emitted_before, kTotal);
  // The 904 events the ring displaced were absorbed by the overflow ring:
  // soft drops, still drainable. Nothing was lost for good.
  EXPECT_EQ(j::soft_dropped() - soft_before, kTotal - 4096);
  EXPECT_EQ(j::hard_dropped() - hard_before, 0u);
  EXPECT_EQ(j::dropped(), j::hard_dropped());  // legacy alias = hard

  const auto events = j::drain();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kTotal));
  // Every event survived, still oldest-first, no duplicates.
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    EXPECT_EQ(events[i].args[0], i);
  }
}

TEST(Journal, DisablingOverflowMakesDisplacementsHard) {
  j::reset();
  j::set_overflow_capacity(0);
  const std::uint64_t soft_before = j::soft_dropped();
  const std::uint64_t hard_before = j::hard_dropped();
  constexpr std::uint64_t kTotal = 4200;
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    j::emit(j::Subsystem::kObs, 99, i);
  }
  EXPECT_EQ(j::soft_dropped() - soft_before, 0u);
  EXPECT_EQ(j::hard_dropped() - hard_before, kTotal - 4096);

  const auto events = j::drain();
  ASSERT_EQ(events.size(), 4096u);
  // Only the ring window survives: newest 4096, oldest-first.
  EXPECT_EQ(events.front().args[0], kTotal - 4096);
  EXPECT_EQ(events.back().args[0], kTotal - 1);

  j::set_overflow_capacity(16384);  // restore the default for later tests
  EXPECT_EQ(j::overflow_capacity(), 16384u);
}

TEST(Journal, TailReturnsNewestOldestFirst) {
  j::reset();
  for (std::uint64_t i = 0; i < 10; ++i) j::emit(j::Subsystem::kObs, 99, i);
  const auto last3 = j::tail(3);
  ASSERT_EQ(last3.size(), 3u);
  EXPECT_EQ(last3[0].args[0], 7u);
  EXPECT_EQ(last3[2].args[0], 9u);
  EXPECT_EQ(j::tail(100).size(), 10u);  // n beyond size: everything
  EXPECT_TRUE(j::tail(0).empty());
}

TEST(Journal, DisabledGateSuppressesEmit) {
  j::reset();
  const std::uint64_t before = j::emitted();
  j::set_enabled(false);
  j::emit(j::Subsystem::kObs, 99, 1);
  j::set_enabled(true);
  EXPECT_EQ(j::emitted(), before);
  EXPECT_TRUE(j::drain().empty());
  j::emit(j::Subsystem::kObs, 99, 2);
  EXPECT_EQ(j::emitted(), before + 1);
}

TEST(Journal, TagIsStableAndCollisionFreeOnTaxonomyNames) {
  EXPECT_EQ(j::tag("ny-server"), j::tag("ny-server"));
  EXPECT_NE(j::tag("ny-server"), j::tag("ny-pc"));
  EXPECT_NE(j::tag(""), 0u);  // offset basis, not zero
  // FNV-1a is fixed for all time: a drain from another host must agree.
  EXPECT_EQ(j::tag("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(Journal, FormatEventNamesSubsystemAndCode) {
  j::Event e;
  e.subsystem = static_cast<std::uint16_t>(j::Subsystem::kSwitchboard);
  e.code = j::kSwReplayReject;
  e.args[0] = 17;
  e.trace_id = 0xabc;
  const std::string line = j::format_event(e);
  EXPECT_NE(line.find("Switchboard/replay-reject"), std::string::npos) << line;
  EXPECT_NE(line.find("0x11"), std::string::npos) << line;
  EXPECT_NE(line.find("trace="), std::string::npos) << line;
  // Unknown codes degrade to decimal, never crash.
  e.subsystem = 200;
  e.code = 31;
  EXPECT_NE(j::format_event(e).find("200/31"), std::string::npos);
}

TEST(Journal, DumpWritesMergedJournalToFile) {
  j::reset();
  j::emit(j::Subsystem::kViews, j::kViVigGenerate, j::tag("ViewX"));
  const std::string path = ::testing::TempDir() + "journal_dump_test.txt";
  ASSERT_TRUE(j::dump(path));
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("Views/vig-generate"), std::string::npos);
  std::remove(path.c_str());
  EXPECT_FALSE(j::dump("/nonexistent-dir/x/y/journal.txt"));
}

TEST(Journal, FaultDumpWritesBannerAndNewestEvents) {
  j::reset();
  for (std::uint64_t i = 0; i < 300; ++i) j::emit(j::Subsystem::kObs, 99, i);
  std::ostringstream os;
  j::write_fault_dump(os, 4);
  const std::string text = os.str();
  EXPECT_NE(text.find("flight recorder"), std::string::npos);
  EXPECT_NE(text.find("0x129"), std::string::npos) << text;  // 297
  EXPECT_EQ(text.find("0x7 "), std::string::npos);  // old events truncated
}

TEST(Journal, JournalJsonShape) {
  j::reset();
  j::emit(j::Subsystem::kSwitchboard, j::kSwTeardown, j::tag("a"), j::tag("b"),
          j::tag("closed"));
  const std::string json = journal_to_json(j::drain());
  EXPECT_NE(json.find("journal-v1"), std::string::npos);
  EXPECT_NE(json.find("\"subsystem\": \"Switchboard\""), std::string::npos);
  EXPECT_NE(json.find("\"event\": \"teardown\""), std::string::npos);
  EXPECT_NE(json.find("\"event_count\": 1"), std::string::npos);
}

// ----------------------------------------------------------------- health

TEST(Health, RollupIsWorstCheckAndEntriesSortByName) {
  HealthRegistry registry;
  EXPECT_EQ(registry.report().overall, HealthLevel::kOk);  // empty = OK

  registry.add("zeta", [] { return CheckResult::ok("fine"); });
  EXPECT_EQ(registry.report().overall, HealthLevel::kOk);

  registry.add("alpha", [] { return CheckResult::degraded("slow"); });
  EXPECT_EQ(registry.report().overall, HealthLevel::kDegraded);

  const auto token = registry.add("mid", [] {
    return CheckResult::failing("down");
  });
  HealthReport report = registry.report();
  EXPECT_EQ(report.overall, HealthLevel::kFailing);
  ASSERT_EQ(report.entries.size(), 3u);
  EXPECT_EQ(report.entries[0].name, "alpha");
  EXPECT_EQ(report.entries[1].name, "mid");
  EXPECT_EQ(report.entries[2].name, "zeta");
  EXPECT_EQ(report.entries[1].result.reason, "down");

  registry.remove(token);
  EXPECT_EQ(registry.report().overall, HealthLevel::kDegraded);
  EXPECT_EQ(registry.size(), 2u);
  registry.clear();
  EXPECT_EQ(registry.size(), 0u);
}

TEST(Health, ThrowingCheckReportsFailingNotTerminate) {
  HealthRegistry registry;
  registry.add("bomb", []() -> CheckResult {
    throw std::runtime_error("probe exploded");
  });
  const HealthReport report = registry.report();
  EXPECT_EQ(report.overall, HealthLevel::kFailing);
  ASSERT_EQ(report.entries.size(), 1u);
  EXPECT_NE(report.entries[0].result.reason.find("probe exploded"),
            std::string::npos);
}

TEST(Health, ChecksMayMutateRegistryWithoutDeadlock) {
  HealthRegistry registry;
  HealthRegistry::Token doomed = registry.add("self-removing", [] {
    return CheckResult::ok();
  });
  registry.add("mutator", [&registry, doomed] {
    registry.remove(doomed);  // re-entrant call during report()
    return CheckResult::ok("removed a sibling");
  });
  EXPECT_EQ(registry.report().overall, HealthLevel::kOk);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(Health, DuplicateNamesGetIndependentTokens) {
  HealthRegistry registry;
  const auto t1 = registry.add("switchboard.conn.a-b",
                               [] { return CheckResult::ok(); });
  const auto t2 = registry.add("switchboard.conn.a-b", [] {
    return CheckResult::degraded("suspended");
  });
  EXPECT_NE(t1, t2);
  EXPECT_EQ(registry.report().entries.size(), 2u);
  registry.remove(t1);
  const auto report = registry.report();
  ASSERT_EQ(report.entries.size(), 1u);
  EXPECT_EQ(report.entries[0].result.level, HealthLevel::kDegraded);
}

TEST(Health, BuiltinChecksInstallOnceAndReportOnQuietProcess) {
  install_builtin_checks();
  const std::size_t size = HealthRegistry::instance().size();
  install_builtin_checks();  // idempotent
  EXPECT_EQ(HealthRegistry::instance().size(), size);
  EXPECT_GE(size, 5u);  // journal/span drops, two cache floors, revocation lag

  const HealthReport report = HealthRegistry::instance().report();
  bool saw_journal = false;
  for (const auto& entry : report.entries) {
    if (entry.name == "obs.journal.drop-rate") saw_journal = true;
    // A quiet test process has no failing built-in signal.
    EXPECT_NE(entry.result.level, HealthLevel::kFailing) << entry.name;
  }
  EXPECT_TRUE(saw_journal);
}

TEST(Health, JsonAndTextRenderings) {
  HealthRegistry registry;
  registry.add("cache", [] { return CheckResult::degraded("cold"); });
  const HealthReport report = registry.report();
  const std::string json = health_to_json(report);
  EXPECT_NE(json.find("\"status\": \"degraded\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\": \"cache\""), std::string::npos);
  EXPECT_NE(json.find("\"reason\": \"cold\""), std::string::npos);
  const std::string text = health_to_text(report);
  EXPECT_NE(text.find("degraded"), std::string::npos);
  EXPECT_NE(text.find("cache"), std::string::npos);
}

}  // namespace
}  // namespace psf::obs
