// Delta-based view cache coherence: field-level dirty tracking means a
// steady-state sync carries only the fields changed since the last exchange.
// These tests pin the protocol invariants: delta merge must be
// indistinguishable from a full merge, the first sync (or an epoch change)
// must fall back to a full image, and deltas must propagate through chained
// replicas wired over ImageEndpoint.
#include <gtest/gtest.h>

#include "mail/components.hpp"
#include "minilang/interp.hpp"
#include "views/cache.hpp"
#include "views/vig.hpp"

namespace psf::views {
namespace {

using minilang::Value;

struct DeltaWorld {
  minilang::ClassRegistry registry;
  Vig vig{&registry};

  DeltaWorld() {
    mail::register_all(registry);
    auto def = ViewDefinition::from_xml(mail::view_xml_member());
    EXPECT_TRUE(def.ok());
    auto cls = vig.generate(def.value());
    EXPECT_TRUE(cls.ok()) << (cls.ok() ? "" : cls.error().message);
  }

  std::shared_ptr<minilang::Instance> make_original() {
    auto original = minilang::instantiate(registry, "MailClient");
    original->call("addAccount", {Value::string("alice"), Value::string("555"),
                                  Value::string("a@x")});
    return original;
  }
};

TEST(DeltaImage, FirstSyncIsFullThenDelta) {
  DeltaWorld w;
  auto original = w.make_original();
  auto replica = minilang::instantiate(w.registry, "MailClient");
  CacheManager cache(CacheManager::Policy::kPull, Value::object(original));

  // No sync point yet: the extract must be a framed full image.
  const util::Bytes cold = cache.extract_from_original(*original);
  ImageFrame frame;
  ASSERT_TRUE(read_image_frame(cold, frame));
  EXPECT_FALSE(frame.is_delta());
  EXPECT_EQ(frame.uid, original->uid());
  cache.merge_pull(*replica, cold);
  EXPECT_GE(cache.stats().full_syncs, 1u);

  // Same epoch, one dirty field: the next extract is a delta.
  original->call("addNote", {Value::string("hi")});
  const util::Bytes warm = cache.extract_from_original(*original);
  ASSERT_TRUE(read_image_frame(warm, frame));
  EXPECT_TRUE(frame.is_delta());
  EXPECT_LT(warm.size(), cold.size());
  cache.merge_pull(*replica, warm);
  EXPECT_GE(cache.stats().delta_pulls, 1u);

  // Nothing dirty: the delta degenerates to (nearly) just the frame header.
  const util::Bytes idle = cache.extract_from_original(*original);
  ASSERT_TRUE(read_image_frame(idle, frame));
  EXPECT_TRUE(frame.is_delta());
  EXPECT_LT(idle.size(), warm.size());
}

TEST(DeltaImage, DeltaMergeEqualsFullMerge) {
  DeltaWorld w;
  auto original = w.make_original();
  auto via_delta = minilang::instantiate(w.registry, "MailClient");
  auto via_full = minilang::instantiate(w.registry, "MailClient");
  CacheManager cache(CacheManager::Policy::kPull, Value::object(original));

  // Replica A follows the original through full + two deltas, with
  // different fields dirtied between syncs (including an in-place container
  // mutation through a builtin, the fingerprint-tracked case).
  cache.merge_pull(*via_delta, cache.extract_from_original(*original));
  original->call("addNote", {Value::string("n1")});
  original->call("deliver", {mail::make_message("bob", "alice", "s", "b")});
  cache.merge_pull(*via_delta, cache.extract_from_original(*original));
  original->call("addAccount", {Value::string("bob"), Value::string("777"),
                                Value::string("b@x")});
  original->call("addNote", {Value::string("n2")});
  cache.merge_pull(*via_delta, cache.extract_from_original(*original));

  // Replica B gets one fresh full image at the end.
  merge_instance_image(*via_full, instance_image(*original));

  // Byte-identical state images: the delta path lost nothing.
  EXPECT_EQ(instance_image(*via_delta), instance_image(*via_full));
  EXPECT_EQ(instance_image(*via_delta), instance_image(*original));
}

TEST(DeltaImage, EpochChangeFallsBackToFull) {
  DeltaWorld w;
  auto original_a = w.make_original();
  auto original_b = w.make_original();  // distinct uid
  auto replica = minilang::instantiate(w.registry, "MailClient");
  CacheManager cache(CacheManager::Policy::kPull, Value::object(original_a));

  cache.merge_pull(*replica, cache.extract_from_original(*original_a));
  ImageFrame frame;
  // Rewired to a different original: uid mismatch forces a full image even
  // though the cache has a sync point.
  const util::Bytes img = cache.extract_from_original(*original_b);
  ASSERT_TRUE(read_image_frame(img, frame));
  EXPECT_FALSE(frame.is_delta());
  EXPECT_EQ(frame.uid, original_b->uid());
}

TEST(DeltaImage, SinceZeroAndLegacyImagesStayFull) {
  DeltaWorld w;
  auto original = w.make_original();
  ImageFrame frame;
  // since == 0 cannot be expressed as a delta on the wire (0 marks "full"),
  // so it must redirect to the framed full image.
  const util::Bytes since_zero = instance_image_since(*original, 0);
  ASSERT_TRUE(read_image_frame(since_zero, frame));
  EXPECT_FALSE(frame.is_delta());
  // The legacy unframed image is still a plain encoded map (no VDI1 magic)
  // and still merges.
  const util::Bytes legacy = instance_image(*original);
  EXPECT_FALSE(read_image_frame(legacy, frame));
  auto replica = minilang::instantiate(w.registry, "MailClient");
  merge_instance_image(*replica, legacy);
  EXPECT_EQ(instance_image(*replica), legacy);
}

TEST(DeltaImage, ApplyIsIdempotent) {
  DeltaWorld w;
  auto original = w.make_original();
  auto replica = minilang::instantiate(w.registry, "MailClient");
  merge_instance_image(*replica, instance_image(*original));
  original->call("addNote", {Value::string("once")});
  const util::Bytes delta =
      instance_image_since(*original, original->state_version() - 1);
  merge_instance_image(*replica, delta);
  const std::uint64_t settled = replica->state_version();
  // Re-applying the same delta matches existing values field-by-field and
  // must not dirty the replica again (no pull -> push echo amplification).
  merge_instance_image(*replica, delta);
  EXPECT_EQ(replica->state_version(), settled);
  EXPECT_EQ(instance_image(*replica), instance_image(*original));
}

TEST(DeltaCoherence, ViewPullGoesDeltaAfterFirstSync) {
  DeltaWorld w;
  auto original = w.make_original();
  auto view = minilang::instantiate(w.registry, "ViewMailClient_Member");
  auto cache = attach_cache_manager(view, Value::object(original),
                                    CacheManager::Policy::kPull);
  EXPECT_EQ(view->call("getPhone", {Value::string("alice")}).as_string(),
            "555");
  EXPECT_GE(cache->stats().full_syncs, 1u);
  const auto deltas_before = cache->stats().delta_pulls;
  original->call("addAccount", {Value::string("alice"), Value::string("556"),
                                Value::string("a@x")});
  EXPECT_EQ(view->call("getPhone", {Value::string("alice")}).as_string(),
            "556");
  EXPECT_GT(cache->stats().delta_pulls, deltas_before);
}

TEST(DeltaCoherence, ChainedReplicaPropagatesThroughImageEndpoint) {
  DeltaWorld w;
  // Nested view class over the member view (view-of-view).
  auto nested = ViewDefinition::from_xml(R"(
<View name="ViewOfMemberView">
  <Represents name="ViewMailClient_Member"/>
  <Restricts>
    <Interface name="AddressI" type="local"/>
  </Restricts>
  <Adds_Methods>
    <MSign>constructor()</MSign><MBody>accounts = map();</MBody>
  </Adds_Methods>
</View>)");
  ASSERT_TRUE(nested.ok());
  ASSERT_TRUE(w.vig.generate(nested.value()).ok());

  auto original = w.make_original();
  auto middle = minilang::instantiate(w.registry, "ViewMailClient_Member");
  auto middle_cache = attach_cache_manager(middle, Value::object(original),
                                           CacheManager::Policy::kPull);
  auto top = minilang::instantiate(w.registry, "ViewOfMemberView");
  auto top_cache = attach_cache_manager(
      top, Value::object(std::make_shared<ImageEndpoint>(middle)),
      CacheManager::Policy::kPull);

  // Cold chain: original -> middle -> top, full images both hops.
  EXPECT_EQ(top->call("getPhone", {Value::string("alice")}).as_string(),
            "555");

  // Mutate the root; the change must flow both hops, and the warm hops must
  // ride deltas (middle pulls a delta from the local original; top pulls a
  // delta from middle through the endpoint's two-arg extract).
  const auto middle_deltas = middle_cache->stats().delta_pulls;
  const auto top_deltas = top_cache->stats().delta_pulls;
  original->call("addAccount", {Value::string("alice"), Value::string("999"),
                                Value::string("a@x")});
  EXPECT_EQ(top->call("getPhone", {Value::string("alice")}).as_string(),
            "999");
  EXPECT_GT(middle_cache->stats().delta_pulls, middle_deltas);
  EXPECT_GT(top_cache->stats().delta_pulls, top_deltas);
}

}  // namespace
}  // namespace psf::views
