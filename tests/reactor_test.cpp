// Reactor / EventChannel / sharded-mail tests (ISSUE 7): session key
// derivation, the connection state machine over memory and socket conduits,
// draining teardown, cross-worker shard routing, wheel-scheduled heartbeats,
// and the differential old-vs-new transport check — identically-keyed
// connections must produce byte-identical sealed frames on the thread-per-
// connection path and the event-loop path (trunk passthrough, session 0).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>

#include "drbac/credential.hpp"
#include "mail/components.hpp"
#include "mail/sharded.hpp"
#include "minilang/interp.hpp"
#include "minilang/value_codec.hpp"
#include "obs/trace.hpp"
#include "switchboard/authorizer.hpp"
#include "switchboard/channel.hpp"
#include "switchboard/network.hpp"
#include "switchboard/reactor.hpp"

namespace psf::switchboard {
namespace {

using namespace std::chrono_literals;
using drbac::Principal;
using drbac::role_of;
using minilang::Value;
using util::kMillisecond;

template <typename Pred>
bool eventually(Pred pred) {
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

/// The switchboard_test ChannelWorld, reproduced here so two instances can
/// be constructed with the same seed: every Rng draw (entity keys, DH) then
/// replays identically, giving the differential tests two connections with
/// byte-identical key material.
struct TrunkWorld {
  explicit TrunkWorld(std::uint64_t seed = 2024) : rng(seed) {
    net.connect("client-host", "server-host", {1 * kMillisecond, 0, false});
    client_cred = drbac::issue(guard, Principal::of_entity(client),
                               role_of(guard, "Member"), {}, false, 0, 0,
                               repo.next_serial());
    AuthorizationSuite server_suite;
    server_suite.identity = server_id;
    server_suite.authorizer = std::make_shared<RoleAuthorizer>(
        &repo, role_of(guard, "Member"));
    server_board.set_suite(server_suite);
  }

  AuthorizationSuite client_suite() {
    AuthorizationSuite suite;
    suite.identity = client;
    suite.credentials = {client_cred};
    suite.authorizer = std::make_shared<AcceptAllAuthorizer>();
    return suite;
  }

  std::shared_ptr<Connection> connect() {
    auto r = client_board.connect(server_board, client_suite(), rng);
    EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().message);
    return r.value();
  }

  util::Rng rng;
  std::shared_ptr<util::SimClock> clock = std::make_shared<util::SimClock>();
  Network net;
  drbac::Repository repo;
  drbac::Entity guard{drbac::Entity::create("Comp.NY", rng)};
  drbac::Entity client{drbac::Entity::create("Alice", rng)};
  drbac::Entity server_id{drbac::Entity::create("Mail.Server", rng)};
  Switchboard client_board{"client-host", &net, clock};
  Switchboard server_board{"server-host", &net, clock};
  drbac::DelegationPtr client_cred;
};

/// Encode a request the way Connection::call does: trace header + values
/// [service, method, args...]. The event transport carries the same
/// plaintext, so both paths are protocol-compatible end to end.
util::Bytes encode_request(const std::string& service,
                           const std::string& method,
                           std::vector<Value> args) {
  std::vector<Value> request;
  request.push_back(Value::string(service));
  request.push_back(Value::string(method));
  for (auto& a : args) request.push_back(std::move(a));
  util::Bytes plain;
  obs::append_trace_header(obs::SpanContext{}, plain);
  minilang::encode_values_into(request, plain);
  return plain;
}

/// Decode a [ok, payload] response; fails the test on application errors.
Value decode_response(const util::Bytes& plain) {
  auto decoded = minilang::decode_values(plain);
  EXPECT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().size(), 2u);
  EXPECT_TRUE(decoded.value()[0].as_bool())
      << decoded.value()[1].as_string();
  return decoded.value()[1];
}

/// Round-trip helper: submit and synchronously await the decoded payload.
Value call_via(const std::shared_ptr<EventChannel>& channel,
               const std::string& method, std::vector<Value> args) {
  std::promise<util::Result<util::Bytes>> promise;
  auto future = promise.get_future();
  channel->submit(encode_request("mail", method, std::move(args)),
                  [&promise](util::Result<util::Bytes> r) {
                    promise.set_value(std::move(r));
                  });
  EXPECT_EQ(future.wait_for(5s), std::future_status::ready);
  auto result = future.get();
  EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error().message);
  return decode_response(result.value());
}

// ------------------------------------------------------- session derivation

TEST(SessionKeys, DeterministicAndLabelSeparated) {
  TrunkWorld w;
  auto conn = w.connect();
  const auto a = conn->derive_session_keys(42, "data");
  const auto b = conn->derive_session_keys(42, "data");
  EXPECT_EQ(a.cipher[0], b.cipher[0]);
  EXPECT_EQ(a.mac_key[1], b.mac_key[1]);
  // Different sessions, directions, and labels all get distinct keys.
  const auto other = conn->derive_session_keys(43, "data");
  EXPECT_NE(a.cipher[0], other.cipher[0]);
  EXPECT_NE(a.cipher[0], a.cipher[1]);
  const auto ctl = conn->derive_session_keys(42, "ctl");
  EXPECT_NE(a.cipher[0], ctl.cipher[0]);
  EXPECT_NE(a.mac_key[0], ctl.mac_key[0]);
}

TEST(SessionKeys, BothTrunkEndsDeriveIdenticalMaterial) {
  // Two identically-seeded worlds stand in for the two ends: establishment
  // is deterministic, so the resumption secrets (and hence every derived
  // session key) must match.
  TrunkWorld w1(7), w2(7);
  auto c1 = w1.connect();
  auto c2 = w2.connect();
  const auto k1 = c1->derive_session_keys(5, "data");
  const auto k2 = c2->derive_session_keys(5, "data");
  EXPECT_EQ(k1.cipher[0], k2.cipher[0]);
  EXPECT_EQ(k1.cipher[1], k2.cipher[1]);
  EXPECT_EQ(k1.mac_key[0], k2.mac_key[0]);
  EXPECT_EQ(k1.mac_key[1], k2.mac_key[1]);
}

TEST(SessionCrypto, SealUnsealRoundTripAndReplayRejection) {
  TrunkWorld w;
  auto conn = w.connect();
  SessionCrypto sender(conn->derive_session_keys(9, "data"));
  SessionCrypto receiver(conn->derive_session_keys(9, "data"));

  const util::Bytes plain = util::to_bytes("hello sharded world");
  util::Bytes frame, out;
  sender.seal_into(0, plain.data(), plain.size(), frame);
  EXPECT_EQ(frame.size(), plain.size() + 40) << "seq(8) | ct | hmac(32)";
  auto r = receiver.unseal_into(0, frame.data(), frame.size(), out);
  ASSERT_TRUE(r.ok()) << r.error().message;
  EXPECT_EQ(out, plain);

  // Replay of the same frame is rejected by the per-session window.
  auto replay = receiver.unseal_into(0, frame.data(), frame.size(), out);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.error().code, "replay");

  // Tampering breaks the MAC before the window is consulted.
  sender.seal_into(0, plain.data(), plain.size(), frame);
  frame[10] ^= 1;
  auto bad = receiver.unseal_into(0, frame.data(), frame.size(), out);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, "mac");

  // Wrong direction = wrong keys.
  sender.seal_into(0, plain.data(), plain.size(), frame);
  auto wrong_dir = receiver.unseal_into(1, frame.data(), frame.size(), out);
  EXPECT_FALSE(wrong_dir.ok());
}

// ------------------------------------------------------------ state machine

TEST(EventChannel, HandshakeAndRpcOverMemoryConduit) {
  TrunkWorld w;
  auto trunk = w.connect();
  EventLoop loop;
  loop.start();

  auto pair = make_memory_conduit_pair();
  ASSERT_TRUE(pair.a && pair.b);
  auto server = EventChannel::serve(
      loop, std::move(pair.b), trunk,
      [](const util::Bytes& request, util::Bytes& response) {
        response = request;  // echo
        response.push_back('!');
      });
  auto client =
      EventChannel::open(loop, std::move(pair.a), trunk, /*session_id=*/17,
                         "alice");
  ASSERT_TRUE(eventually([&] {
    return client->state() == EventChannel::State::kEstablished;
  }));
  EXPECT_EQ(server->state(), EventChannel::State::kEstablished);
  EXPECT_EQ(server->session_id(), 17u);
  EXPECT_EQ(server->mailbox(), "alice") << "HELLO carries the mailbox";

  std::promise<util::Bytes> promise;
  auto future = promise.get_future();
  client->submit(util::to_bytes("ping"), [&](util::Result<util::Bytes> r) {
    ASSERT_TRUE(r.ok()) << r.error().message;
    promise.set_value(r.value());
  });
  ASSERT_EQ(future.wait_for(5s), std::future_status::ready);
  EXPECT_EQ(future.get(), util::to_bytes("ping!"));

  const auto stats = client->stats();
  EXPECT_GE(stats.frames_out, 2u);  // HELLO + DATA
  EXPECT_GE(stats.frames_in, 2u);   // WELCOME + response
  loop.stop();
}

TEST(EventChannel, SubmitsQueuedDuringHandshakeAreSentOnEstablish) {
  TrunkWorld w;
  auto trunk = w.connect();
  EventLoop loop;
  loop.start();
  auto pair = make_memory_conduit_pair();
  auto server = EventChannel::serve(
      loop, std::move(pair.b), trunk,
      [](const util::Bytes& request, util::Bytes& response) {
        response = request;
      });
  auto client = EventChannel::open(loop, std::move(pair.a), trunk, 3, "bob");
  // Submit immediately — very likely before WELCOME lands.
  std::atomic<int> answered{0};
  for (int i = 0; i < 10; ++i) {
    client->submit(util::to_bytes("q" + std::to_string(i)),
                   [&answered, i](util::Result<util::Bytes> r) {
                     ASSERT_TRUE(r.ok());
                     EXPECT_EQ(r.value(),
                               util::to_bytes("q" + std::to_string(i)))
                         << "responses must match FIFO";
                     answered.fetch_add(1);
                   });
  }
  EXPECT_TRUE(eventually([&] { return answered.load() == 10; }));
  loop.stop();
}

#ifdef __linux__
TEST(EventChannel, SocketConduitWithWriteBacklog) {
  TrunkWorld w;
  auto trunk = w.connect();
  EventLoop loop;
  loop.start();
  auto pair = make_socket_conduit_pair();
  ASSERT_TRUE(pair.a && pair.b) << "socketpair failed";
  EXPECT_GE(pair.a->fd(), 0);
  auto server = EventChannel::serve(
      loop, std::move(pair.b), trunk,
      [](const util::Bytes& request, util::Bytes& response) {
        response = request;
      });
  auto client = EventChannel::open(loop, std::move(pair.a), trunk, 4, "carol");
  // 2 MB round trip: far beyond the AF_UNIX buffer, so both directions must
  // take the want-write path (partial writes, poller-driven resume).
  util::Bytes big(2u << 20);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 31);
  }
  std::promise<util::Bytes> promise;
  auto future = promise.get_future();
  client->submit(big, [&](util::Result<util::Bytes> r) {
    ASSERT_TRUE(r.ok()) << r.error().message;
    promise.set_value(r.value());
  });
  ASSERT_EQ(future.wait_for(5s), std::future_status::ready);
  EXPECT_EQ(future.get(), big);
  loop.stop();
}
#endif

TEST(EventChannel, DrainingTeardown) {
  TrunkWorld w;
  auto trunk = w.connect();
  EventLoop loop;
  loop.start();
  auto pair = make_memory_conduit_pair();
  auto server = EventChannel::serve(
      loop, std::move(pair.b), trunk,
      [](const util::Bytes& request, util::Bytes& response) {
        response = request;
      });
  auto client = EventChannel::open(loop, std::move(pair.a), trunk, 6, "dave");
  ASSERT_TRUE(eventually([&] {
    return client->state() == EventChannel::State::kEstablished;
  }));
  // One echo round trip so the drain has real traffic behind it.
  std::promise<util::Bytes> echoed;
  client->submit(util::to_bytes("traffic"), [&](util::Result<util::Bytes> r) {
    ASSERT_TRUE(r.ok());
    echoed.set_value(r.value());
  });
  ASSERT_EQ(echoed.get_future().wait_for(5s), std::future_status::ready);
  client->begin_drain();
  ASSERT_TRUE(eventually([&] {
    return client->state() == EventChannel::State::kClosed &&
           server->state() == EventChannel::State::kClosed;
  })) << "BYE must tear down both ends";

  // Post-drain submits fail fast instead of hanging.
  std::promise<util::Result<util::Bytes>> promise;
  auto future = promise.get_future();
  client->submit(util::to_bytes("late"), [&](util::Result<util::Bytes> r) {
    promise.set_value(std::move(r));
  });
  ASSERT_EQ(future.wait_for(5s), std::future_status::ready);
  auto result = future.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "closed");
  loop.stop();
}

// ------------------------------------------------------------ differential

TEST(Differential, TrunkPassthroughFramesAreByteIdentical) {
  // Twin worlds, same seed: conn_old (thread-per-connection transport) and
  // conn_new (trunk under the event transport) hold identical key material.
  TrunkWorld old_world(99), new_world(99);
  auto conn_old = old_world.connect();
  auto conn_new = new_world.connect();

  const util::Bytes payload = encode_request("mail", "getPhone",
                                             {Value::string("alice")});
  // Old path: first A->B frame off a fresh connection (seq 1).
  const util::Bytes frame_old = conn_old->seal(Connection::End::kA, payload);

  // New path: session 0 = trunk passthrough. Drive the client end against a
  // hand-rolled server so the raw wire bytes are observable.
  EventLoop loop;
  loop.start();
  auto pair = make_memory_conduit_pair();
  Conduit& server_end = *pair.b;
  auto client = EventChannel::open(loop, std::move(pair.a), conn_new,
                                   /*session_id=*/0, "alice");
  client->submit(payload, [](util::Result<util::Bytes>) {});

  // Manual server: read wire messages (u32_be len | u8 type | ...).
  util::Bytes wire;
  auto read_message = [&](std::uint8_t expect_type) -> util::Bytes {
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    for (;;) {
      if (wire.size() >= 4) {
        const std::uint32_t len = util::get_u32_be(wire, 0);
        if (wire.size() >= 4 + len) {
          util::Bytes body(wire.begin() + 4, wire.begin() + 4 + len);
          wire.erase(wire.begin(), wire.begin() + 4 + len);
          EXPECT_EQ(body[0], expect_type);
          return body;
        }
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        ADD_FAILURE() << "wire timeout waiting for type "
                      << static_cast<int>(expect_type);
        return {};
      }
      std::uint8_t chunk[4096];
      const std::size_t n = server_end.read_some(chunk, sizeof chunk);
      if (n == 0) {
        std::this_thread::sleep_for(1ms);
      } else {
        wire.insert(wire.end(), chunk, chunk + n);
      }
    }
  };

  // HELLO: type 0 | u64 session id (0) | ctl-sealed mailbox.
  const util::Bytes hello = read_message(0);
  ASSERT_GE(hello.size(), 9u);
  EXPECT_EQ(util::get_u64_be(hello, 1), 0u);
  SessionCrypto ctl(conn_new->derive_session_keys(0, "ctl"));
  util::Bytes hello_plain;
  auto unsealed = ctl.unseal_into(0, hello.data() + 9, hello.size() - 9,
                                  hello_plain);
  ASSERT_TRUE(unsealed.ok()) << unsealed.error().message;
  EXPECT_EQ(hello_plain, util::to_bytes("alice"));

  // WELCOME back (type 1) establishes the client, which then sends the
  // queued DATA frame.
  util::Bytes welcome_frame;
  ctl.seal_into(1, hello_plain.data(), hello_plain.size(), welcome_frame);
  util::Bytes welcome;
  util::put_u32_be(welcome, static_cast<std::uint32_t>(9 + welcome_frame.size()));
  welcome.push_back(1);
  util::put_u64_be(welcome, 0);
  welcome.insert(welcome.end(), welcome_frame.begin(), welcome_frame.end());
  std::size_t written = 0;
  while (written < welcome.size()) {
    written += server_end.write_some(welcome.data() + written,
                                     welcome.size() - written);
  }

  // DATA: type 2 | trunk-sealed frame — must equal the old transport's
  // frame bit for bit (same keys, same seq, same wire format).
  const util::Bytes data = read_message(2);
  const util::Bytes frame_new(data.begin() + 1, data.end());
  EXPECT_EQ(frame_new, frame_old)
      << "event transport must preserve the sealed frame format exactly";
  loop.stop();
}

TEST(Differential, OldAndNewTransportsAgreeOnMailResults) {
  // Value-level differential: the same logical request served by the
  // thread-per-connection path (Connection::call into a registered service)
  // and by the event path (EventChannel into a ShardedMailBackend) must
  // produce the same application result.
  TrunkWorld w;
  minilang::ClassRegistry registry;
  mail::register_all(registry);
  auto service = minilang::instantiate(registry, "MailServer");
  w.server_board.register_service("mail", service);
  auto conn = w.connect();
  conn->call(Connection::End::kA, "mail", "registerAccount",
             {Value::string("alice"), Value::string("555"),
              Value::string("a@x")});
  const Value old_phone = conn->call(Connection::End::kA, "mail", "getPhone",
                                     {Value::string("alice")});

  mail::ShardedMailBackend backend(2);
  backend.register_account("alice", "555", "a@x");
  Reactor reactor({.workers = 2});
  reactor.start();
  const int worker = static_cast<int>(backend.shard_of("alice"));
  auto pair = make_memory_conduit_pair();
  mail::MailShard& shard = backend.shard(static_cast<std::size_t>(worker));
  auto server = reactor.serve(
      worker, std::move(pair.b), conn,
      [&shard](const util::Bytes& request, util::Bytes& response) {
        shard.handle(request, response);
      });
  auto client = reactor.open(worker, std::move(pair.a), conn, 1, "alice");
  const Value new_phone = call_via(client, "getPhone",
                                   {Value::string("alice")});
  EXPECT_EQ(new_phone.as_string(), old_phone.as_string());
  reactor.stop();
}

// ---------------------------------------------------------- shard routing

TEST(Sharding, ReactorAndBackendAgreeOnPlacement) {
  Reactor reactor({.workers = 3});
  mail::ShardedMailBackend backend(3);
  for (const char* name :
       {"alice", "bob", "carol", "dave", "erin", "frank", "mallory",
        "peggy", "trent", "victor", "walter", "a", "zz-top"}) {
    EXPECT_EQ(reactor.shard_of(name), backend.shard_of(name))
        << "placement must be one pure function across tiers: " << name;
  }
  // Not all mailboxes on one shard (sanity on the hash spread).
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 100; ++i) {
    ++counts[backend.shard_of("mailbox-" + std::to_string(i))];
  }
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(Sharding, RequestsLandOnTheOwningShard) {
  TrunkWorld w;
  auto trunk = w.connect();
  mail::ShardedMailBackend backend(2);
  Reactor reactor({.workers = 2});
  reactor.start();

  const std::vector<std::string> users = {"alice", "bob", "carol", "dave"};
  for (const auto& user : users) {
    backend.register_account(user, "ph-" + user, user + "@x");
  }
  std::vector<std::shared_ptr<EventChannel>> channels;
  std::uint64_t session = 1;
  for (const auto& user : users) {
    const int worker = static_cast<int>(backend.shard_of(user));
    auto pair = make_memory_conduit_pair();
    mail::MailShard& shard = backend.shard(static_cast<std::size_t>(worker));
    channels.push_back(reactor.serve(
        worker, std::move(pair.b), trunk,
        [&shard](const util::Bytes& request, util::Bytes& response) {
          shard.handle(request, response);
        }));
    auto client = reactor.open(worker, std::move(pair.a), trunk, session++,
                               user);
    const Value phone = call_via(client, "getPhone", {Value::string(user)});
    EXPECT_EQ(phone.as_string(), "ph-" + user);
    channels.push_back(std::move(client));
  }
  for (auto& channel : channels) channel->begin_drain();
  ASSERT_TRUE(eventually([&] {
    for (const auto& channel : channels) {
      if (channel->state() != EventChannel::State::kClosed) return false;
    }
    return true;
  }));
  reactor.stop();
  // Every shard served exactly its own mailboxes.
  std::vector<std::uint64_t> expected(2, 0);
  for (const auto& user : users) ++expected[backend.shard_of(user)];
  for (std::size_t s = 0; s < 2; ++s) {
    EXPECT_EQ(backend.shard(s).requests(), expected[s]) << "shard " << s;
  }
  EXPECT_EQ(backend.total_requests(), users.size());
}

// -------------------------------------------------------------- heartbeats

TEST(Reactor, WheelScheduledHeartbeatsReplaceDriverThreads) {
  TrunkWorld w;
  auto conn = w.connect();
  Reactor reactor({.workers = 2});
  reactor.start();
  const std::uint64_t beats_before = conn->stats().heartbeats;
  auto handle = reactor.schedule_heartbeats(conn, 5ms);
  ASSERT_TRUE(eventually([&] { return handle.beats() >= 3; }));
  EXPECT_GT(conn->stats().heartbeats, beats_before)
      << "probes must reach Connection::heartbeat";
  handle.cancel();
  EXPECT_FALSE(handle.active());
  const std::uint64_t at_cancel = handle.beats();
  std::this_thread::sleep_for(30ms);
  EXPECT_LE(handle.beats(), at_cancel + 1) << "cancel must stop the schedule";
  reactor.stop();
}

TEST(Reactor, ThreadCountStaysBoundedByWorkers) {
  // Sanitizer runtimes (TSan) lazily spawn a persistent helper thread on the
  // first pthread_create; force that before taking the baseline so the
  // worker-count arithmetic below is exact under every build flavor.
  std::thread([] {}).join();
  const int base = count_os_threads();
  if (base < 0) GTEST_SKIP() << "no /proc/self/status";
  TrunkWorld w;
  auto trunk = w.connect();
  Reactor reactor({.workers = 2});
  reactor.start();
  const int with_reactor = count_os_threads();
  EXPECT_EQ(with_reactor, base + 2) << "one OS thread per worker";

  // 32 sessions + heartbeat monitoring: zero additional threads — the whole
  // point of replacing thread-per-connection + HeartbeatDriver.
  std::vector<std::shared_ptr<EventChannel>> channels;
  for (int i = 0; i < 32; ++i) {
    auto pair = make_memory_conduit_pair();
    const int worker = i % 2;
    channels.push_back(reactor.serve(
        worker, std::move(pair.b), trunk,
        [](const util::Bytes& request, util::Bytes& response) {
          response = request;
        }));
    channels.push_back(reactor.open(worker, std::move(pair.a), trunk,
                                    static_cast<std::uint64_t>(i + 1),
                                    "user-" + std::to_string(i)));
  }
  auto heartbeats = reactor.schedule_heartbeats(trunk, 10ms);
  ASSERT_TRUE(eventually([&] {
    for (const auto& channel : channels) {
      if (channel->state() != EventChannel::State::kEstablished) return false;
    }
    return true;
  }));
  EXPECT_EQ(count_os_threads(), with_reactor)
      << "sessions and heartbeats must not spawn threads";
  heartbeats.cancel();
  reactor.stop();
  EXPECT_LE(count_os_threads(), base) << "stop() joins the workers";
}

// ----------------------------------------------------------------- selector

TEST(Transport, EnvSelector) {
  EXPECT_STREQ(to_string(TransportKind::kEventLoop), "event");
  EXPECT_STREQ(to_string(TransportKind::kThreadPerConnection), "threads");
  // Default (unset or unknown) is the event core.
  EXPECT_EQ(transport_from_env(), TransportKind::kEventLoop);
}

}  // namespace
}  // namespace psf::switchboard
