#include <gtest/gtest.h>

#include "mail/scenario.hpp"
#include "psf/cipher_wiring.hpp"
#include "psf/framework.hpp"
#include "psf/guard.hpp"
#include "psf/planner.hpp"

namespace psf::framework {
namespace {

using drbac::Attribute;
using drbac::Principal;
using mail::Scenario;
using minilang::Value;

// ------------------------------------------------------------------ Guard

TEST(Guard, IssuesAndAuthorizesOwnRoles) {
  drbac::Repository repo;
  util::Rng rng(1);
  Guard guard("Comp.NY", &repo, rng);
  drbac::Entity alice = guard.create_principal("Alice");
  guard.grant(Principal::of_entity(alice), "Member");
  EXPECT_TRUE(
      guard.authorize(Principal::of_entity(alice), guard.role("Member"), 0)
          .ok());
  EXPECT_FALSE(
      guard.authorize(Principal::of_entity(alice), guard.role("Admin"), 0)
          .ok());
}

TEST(Guard, AccessRulesSelectViewsInOrder) {
  drbac::Repository repo;
  util::Rng rng(2);
  Guard guard("Comp.NY", &repo, rng);
  guard.add_access_rule("Member", "ViewMailClient_Member");
  guard.add_access_rule("Partner", "ViewMailClient_Partner");
  guard.set_default_view("ViewMailClient_Anonymous");

  drbac::Entity member = guard.create_principal("M");
  drbac::Entity partner = guard.create_principal("P");
  drbac::Entity stranger = guard.create_principal("S");
  guard.grant(Principal::of_entity(member), "Member");
  guard.grant(Principal::of_entity(partner), "Partner");

  auto m = guard.select_view(Principal::of_entity(member), 0);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.value().view_name, "ViewMailClient_Member");
  EXPECT_EQ(m.value().matched_role, "Member");
  ASSERT_TRUE(m.value().proof.has_value());

  auto p = guard.select_view(Principal::of_entity(partner), 0);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().view_name, "ViewMailClient_Partner");

  auto s = guard.select_view(Principal::of_entity(stranger), 0);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().view_name, "ViewMailClient_Anonymous");
  EXPECT_FALSE(s.value().proof.has_value());
}

TEST(Guard, NoDefaultViewDeniesStrangers) {
  drbac::Repository repo;
  util::Rng rng(3);
  Guard guard("Comp.NY", &repo, rng);
  guard.add_access_rule("Member", "V");
  drbac::Entity stranger = guard.create_principal("S");
  auto r = guard.select_view(Principal::of_entity(stranger), 0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "access-denied");
}

// ---------------------------------------------------------------- Planner

// Fixture with the paper's three-site topology built once per test.
struct ScenarioFixture : ::testing::Test {
  Scenario s = mail::build_scenario();
  Psf& psf() { return *s.psf; }
};

using PlannerScenario = ScenarioFixture;

TEST_F(PlannerScenario, ServesFromOriginWhenQosIsLoose) {
  auto session = psf().request(s.request_for(s.alice, Scenario::kNyPc));
  ASSERT_TRUE(session.ok()) << session.error().message;
  EXPECT_EQ(session.value().provider_node, Scenario::kNyServer);
  EXPECT_FALSE(session.value().plan.uses_replica);
}

TEST_F(PlannerScenario, DeploysReplicaWhenBandwidthIsLow) {
  // Paper §2.2: PSF adapts to low available bandwidth by placing a view
  // mail server close to the client.
  framework::QoS qos;
  qos.min_bandwidth_kbps = 1000;  // WAN is only 200 kbps
  auto session = psf().request(s.request_for(s.bob, Scenario::kSdPc, qos));
  ASSERT_TRUE(session.ok()) << session.error().message;
  EXPECT_EQ(session.value().provider_node, Scenario::kSdPc);
  EXPECT_TRUE(session.value().plan.uses_replica);
  EXPECT_FALSE(session.value().plan.uses_ciphers);
}

TEST_F(PlannerScenario, DeploysCipherPairForPrivacyOverInsecureWan) {
  // Paper §2.2: PSF adapts to insecure links by placing an
  // <encryptor/decryptor> pair.
  framework::QoS qos;
  qos.min_bandwidth_kbps = 1000;
  qos.privacy = true;
  auto session = psf().request(s.request_for(s.bob, Scenario::kSdPc, qos));
  ASSERT_TRUE(session.ok()) << session.error().message;
  EXPECT_TRUE(session.value().plan.uses_replica);
  EXPECT_TRUE(session.value().plan.uses_ciphers);
  bool enc = false, dec = false;
  for (const auto& d : session.value().deployed) {
    if (d == "Encryptor@sd-pc") enc = true;
    if (d == "Decryptor@ny-server") dec = true;
  }
  EXPECT_TRUE(enc);
  EXPECT_TRUE(dec);
}

TEST_F(PlannerScenario, UntrustedNodeCannotHostReplica) {
  // se-pc maps onto Mail.Node only via IBM.Windows with Secure={false},
  // Trust=(0,1): the application policy (Secure=true, Trust>=5) rejects it,
  // so a replica cannot be placed there and high-bandwidth QoS cannot be
  // met.
  framework::QoS qos;
  qos.min_bandwidth_kbps = 1000;
  auto session = psf().request(s.request_for(s.charlie, Scenario::kSePc, qos));
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.error().code, "no-plan");
  EXPECT_NE(session.error().message.find("fails application policy"),
            std::string::npos);
}

TEST_F(PlannerScenario, WithoutViewsOnlyOriginIsAvailable) {
  // The §4.2 claim, as an ablation: disable views and the low-bandwidth
  // request has no feasible deployment.
  PlanProblem problem;
  problem.client_node = Scenario::kSdPc;
  problem.origin_node = Scenario::kNyServer;
  problem.client_view = "";  // irrelevant here
  problem.replica_view = "ViewMailClientReplica";
  problem.qos.min_bandwidth_kbps = 1000;
  problem.node_policy_role = s.mail->role("Node");
  problem.node_policy_attrs = {
      {"Secure", Attribute::make_set("Secure", {"true"})}};
  // Reuse the service's component identities through a fresh planner.
  Planner planner(&psf().network(), &psf().repository());
  PlannerOptions without_views;
  without_views.use_views = false;
  auto plan = planner.plan(problem, psf().node_infos(), 0, without_views);
  EXPECT_FALSE(plan.ok());

  PlannerOptions with_views;  // defaults
  // With views the replica component must be authorized; use the real one.
  problem.replica_component =
      Principal::of_entity(s.ny->create_principal("tmp.Replica"));
  s.ny->grant(problem.replica_component, "Executable",
              {{"CPU", Attribute::make_cap("CPU", 100)}});
  auto plan2 = planner.plan(problem, psf().node_infos(), 0, with_views);
  ASSERT_TRUE(plan2.ok()) << plan2.error().message;
  EXPECT_TRUE(plan2.value().uses_replica);
}

TEST_F(PlannerScenario, PlanDisplayIsReadable) {
  framework::QoS qos;
  qos.min_bandwidth_kbps = 1000;
  qos.privacy = true;
  auto session = psf().request(s.request_for(s.bob, Scenario::kSdPc, qos));
  ASSERT_TRUE(session.ok());
  const std::string text = session.value().plan.display();
  EXPECT_NE(text.find("deploy replica"), std::string::npos);
  EXPECT_NE(text.find("Encryptor"), std::string::npos);
  EXPECT_NE(text.find("switchboard channel"), std::string::npos);
}

// ------------------------------------------------- end-to-end client flows

TEST_F(PlannerScenario, AliceGetsMemberView) {
  auto session = psf().request(s.request_for(s.alice, Scenario::kNyPc));
  ASSERT_TRUE(session.ok()) << session.error().message;
  EXPECT_EQ(session.value().view_name, "ViewMailClient_Member");
  EXPECT_EQ(session.value().matched_role, "Member");
  // Member view: full functionality, local addMeeting works.
  EXPECT_TRUE(
      session.value().view->call("addMeeting", {Value::string("bob")}).as_bool());
}

TEST_F(PlannerScenario, BobIsMemberAcrossDomains) {
  // Paper §3.3: Bob (San Diego) is Comp.NY.Member via credentials (2)+(11).
  auto session = psf().request(s.request_for(s.bob, Scenario::kSdPc));
  ASSERT_TRUE(session.ok()) << session.error().message;
  EXPECT_EQ(session.value().view_name, "ViewMailClient_Member");
}

TEST_F(PlannerScenario, CharlieIsPartnerViaThirdPartyDelegation) {
  // Charlie proves Comp.NY.Partner via (15)+(12), with (3) authorizing
  // Comp.SD as the third-party issuer.
  auto session = psf().request(s.request_for(s.charlie, Scenario::kSePc));
  ASSERT_TRUE(session.ok()) << session.error().message;
  EXPECT_EQ(session.value().view_name, "ViewMailClient_Partner");
  // Partner view: addMeeting is reduced to a request (returns false).
  EXPECT_FALSE(session.value()
                   .view->call("addMeeting", {Value::string("alice")})
                   .as_bool());
}

TEST_F(PlannerScenario, StrangerGetsAnonymousView) {
  drbac::Entity eve = drbac::Entity::create("Eve", psf().rng());
  framework::ClientRequest request;
  request.identity = eve;
  request.client_node = Scenario::kSePc;
  request.service = "mail";
  auto session = psf().request(request);
  ASSERT_TRUE(session.ok()) << session.error().message;
  EXPECT_EQ(session.value().view_name, "ViewMailClient_Anonymous");
  // The anonymous view exposes only AddressI.
  EXPECT_EQ(session.value()
                .view->call("getEmail", {Value::string("alice")})
                .as_string(),
            "alice@comp.ny");
  EXPECT_THROW(session.value().view->call("sendMessage",
                                          {mail::make_message("e", "a", "s", "b")}),
               minilang::EvalError);
}

TEST_F(PlannerScenario, PartnerViewRoutesToOriginOverChannel) {
  auto session = psf().request(s.request_for(s.charlie, Scenario::kSePc));
  ASSERT_TRUE(session.ok());
  // AddressI is switchboard-bound: answered by the origin at ny-server.
  EXPECT_EQ(session.value()
                .view->call("getPhone", {Value::string("bob")})
                .as_string(),
            "555-0101");
  EXPECT_GT(session.value().connection->stats().calls, 0u);
}

TEST_F(PlannerScenario, MailFlowsThroughReplicaToOrigin) {
  framework::QoS qos;
  qos.min_bandwidth_kbps = 1000;
  auto session = psf().request(s.request_for(s.bob, Scenario::kSdPc, qos));
  ASSERT_TRUE(session.ok()) << session.error().message;
  // Bob sends a message through his member view; the view pushes to the
  // replica at sd-pc, whose cache manager syncs to the origin at ny-server.
  session.value().view->call(
      "sendMessage", {mail::make_message("bob", "alice", "hi", "lunch?")});
  auto origin = psf().origin_instance("mail");
  EXPECT_EQ(origin->get_field("outbox").as_list()->size(), 1u);
}

TEST_F(PlannerScenario, RevocationMidSessionSuspendsClient) {
  auto session = psf().request(s.request_for(s.bob, Scenario::kSdPc));
  ASSERT_TRUE(session.ok());
  // Use the view once.
  session.value().view->call("getPhone", {Value::string("alice")});
  // SD-Guard revokes Bob's membership (11): the connection monitor fires.
  psf().repository().revoke(s.cred(11)->serial);
  EXPECT_TRUE(session.value().connection->suspended(
      switchboard::Connection::End::kA));
  EXPECT_THROW(session.value().view->call("getPhone", {Value::string("alice")}),
               minilang::EvalError);
}

TEST_F(PlannerScenario, SessionValidityTracksNetworkChanges) {
  framework::QoS qos;
  qos.max_latency_ms = 10;
  auto session = psf().request(s.request_for(s.alice, Scenario::kNyPc, qos));
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE(psf().session_still_valid(session.value()));
  // The monitoring module records the degradation; the session is invalid.
  psf().update_link(Scenario::kNyServer, Scenario::kNyPc,
                    {50 * util::kMillisecond, 100'000, true});
  EXPECT_FALSE(psf().session_still_valid(session.value()));
  EXPECT_FALSE(psf().monitor().events().empty());
}

TEST_F(PlannerScenario, ReplicaIsReusedAcrossClients) {
  framework::QoS qos;
  qos.min_bandwidth_kbps = 1000;
  auto s1 = psf().request(s.request_for(s.bob, Scenario::kSdPc, qos));
  ASSERT_TRUE(s1.ok()) << s1.error().message;
  const auto cpu_after_first = psf().node(Scenario::kSdPc)->cpu_used();
  auto s2 = psf().request(s.request_for(s.bob, Scenario::kSdPc, qos));
  ASSERT_TRUE(s2.ok());
  // Second session deploys only the client view, not a second replica.
  EXPECT_EQ(psf().node(Scenario::kSdPc)->cpu_used(),
            cpu_after_first + 10 /*view_cpu*/);
}

// ------------------------------------------------------------ cipher pair

TEST(CipherWiring, ImagesAreCiphertextOnTheWireAndPlaintextInside) {
  // Spy target records the raw bytes it receives (the "wire").
  struct Spy : minilang::CallTarget {
    util::Bytes last;
    Value call(const std::string&, std::vector<Value> args) override {
      if (!args.empty() && args[0].is_bytes()) last = args[0].as_bytes();
      return Value::bytes(last);  // echo ciphertext back
    }
    std::string type_name() const override { return "spy"; }
  };

  minilang::ClassRegistry registry;
  mail::register_all(registry);
  const Value key = Value::bytes(util::to_bytes("shared key material"));
  auto encryptor = minilang::instantiate(registry, "Encryptor", {key});
  auto decryptor = minilang::instantiate(registry, "Decryptor", {key});

  auto spy = std::make_shared<Spy>();
  // provider side: CipherStub(spy as wire); the spy sees ciphertext.
  CipherStub stub(spy, encryptor);
  const util::Bytes image = util::to_bytes("inbox: love letters");
  const Value echoed = stub.call("mergeImageIntoObj", {Value::bytes(image)});

  EXPECT_NE(spy->last, image);                 // ciphertext on the wire
  EXPECT_EQ(echoed.as_bytes(), image);         // stub decrypts the echo

  // origin side: CipherEndpoint decrypts before dispatching.
  struct PlainSink : minilang::CallTarget {
    util::Bytes got;
    Value call(const std::string&, std::vector<Value> args) override {
      got = args[0].as_bytes();
      return Value::null();
    }
    std::string type_name() const override { return "sink"; }
  };
  auto sink = std::make_shared<PlainSink>();
  CipherEndpoint endpoint(sink, decryptor);
  endpoint.call("mergeImageIntoObj", {Value::bytes(spy->last)});
  EXPECT_EQ(sink->got, image);  // plaintext restored inside the endpoint
}

TEST(CipherWiring, NonBytesArgumentsPassThrough) {
  minilang::ClassRegistry registry;
  mail::register_all(registry);
  auto cipher = minilang::instantiate(
      registry, "Encryptor", {Value::bytes(util::to_bytes("k"))});
  struct Echo : minilang::CallTarget {
    Value call(const std::string&, std::vector<Value> args) override {
      return args[0];
    }
    std::string type_name() const override { return "echo"; }
  };
  CipherStub stub(std::make_shared<Echo>(), cipher);
  EXPECT_EQ(stub.call("m", {Value::string("plain")}).as_string(), "plain");
  EXPECT_EQ(stub.call("m", {Value::integer(7)}).as_int(), 7);
}

}  // namespace
}  // namespace psf::framework
