#include <gtest/gtest.h>

#include "minilang/value_codec.hpp"
#include "util/rng.hpp"

namespace psf::minilang {
namespace {

TEST(ValueCodec, RoundTripsPrimitives) {
  for (const Value& v :
       {Value::null(), Value::boolean(true), Value::boolean(false),
        Value::integer(0), Value::integer(-42), Value::integer(1'234'567'890),
        Value::string(""), Value::string("hello"),
        Value::bytes({0x00, 0xff, 0x7f})}) {
    auto decoded = decode_value(encode_value(v));
    ASSERT_TRUE(decoded.ok());
    EXPECT_TRUE(decoded.value().equals(v)) << v.to_display_string();
  }
}

TEST(ValueCodec, RoundTripsNestedContainers) {
  ValueMap inner;
  inner["phone"] = Value::string("555-0100");
  inner["email"] = Value::string("alice@comp.ny");
  ValueMap outer;
  outer["alice"] = Value::map(inner);
  outer["count"] = Value::integer(2);
  Value v = Value::list({Value::map(outer), Value::string("tail"),
                         Value::list({Value::integer(1), Value::null()})});
  auto decoded = decode_value(encode_value(v));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().equals(v));
}

TEST(ValueCodec, ObjectsAreNotSerializable) {
  struct Dummy : CallTarget {
    Value call(const std::string&, std::vector<Value>) override {
      return Value::null();
    }
    std::string type_name() const override { return "Dummy"; }
  };
  const Value v = Value::object(std::make_shared<Dummy>());
  EXPECT_THROW(encode_value(v), EvalError);
  // ... and the error message points at the paper's remedy.
  try {
    encode_value(v);
  } catch (const EvalError& e) {
    EXPECT_NE(std::string(e.what()).find("rmi or switchboard"),
              std::string::npos);
  }
}

TEST(ValueCodec, RejectsTruncatedInput) {
  const util::Bytes encoded = encode_value(Value::string("some string"));
  for (std::size_t cut = 1; cut < encoded.size(); ++cut) {
    util::Bytes truncated(encoded.begin(),
                          encoded.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(decode_value(truncated).ok()) << "cut at " << cut;
  }
}

TEST(ValueCodec, RejectsTrailingGarbage) {
  util::Bytes encoded = encode_value(Value::integer(5));
  encoded.push_back(0x00);
  EXPECT_FALSE(decode_value(encoded).ok());
}

TEST(ValueCodec, RejectsUnknownTag) {
  EXPECT_FALSE(decode_value({0xee}).ok());
}

TEST(ValueCodec, RejectsOversizedListCount) {
  // Tag list + absurd count.
  util::Bytes bad = {6, 0xff, 0xff, 0xff, 0xff};
  EXPECT_FALSE(decode_value(bad).ok());
}

TEST(ValueCodec, ValueListRoundTrip) {
  std::vector<Value> args = {Value::string("getPhone"), Value::integer(1),
                             Value::list({Value::string("alice")})};
  auto decoded = decode_values(encode_values(args));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().size(), 3u);
  for (std::size_t i = 0; i < args.size(); ++i) {
    EXPECT_TRUE(decoded.value()[i].equals(args[i]));
  }
}

TEST(ValueCodec, EmptyValueListRoundTrip) {
  auto decoded = decode_values(encode_values({}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().empty());
}

TEST(ValueCodec, FuzzDecodeNeverCrashes) {
  util::Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    const util::Bytes garbage = rng.next_bytes(rng.next_below(64));
    (void)decode_value(garbage);  // must not crash or hang
    (void)decode_values(garbage);
  }
  SUCCEED();
}

}  // namespace
}  // namespace psf::minilang
