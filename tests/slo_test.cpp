// SLO registry (ISSUE 6): declared latency objectives over registry
// histograms, burn-rate arithmetic, rolling-window rotation, the health
// checks each declaration registers, and the contention profiler that
// shares this binary (both are small obs satellites of the load-plane PR).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/contention.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "util/lock_rank.hpp"

namespace psf::obs {
namespace {

/// Finds the entry registered as "slo.<name>", or nullptr.
const HealthReport::Entry* find_check(const HealthReport& report,
                                      const std::string& name) {
  for (const auto& entry : report.entries) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

TEST(Slo, DeclareArmsExemplarThresholdAndRegistersHealthCheck) {
  SloRegistry& slos = SloRegistry::instance();
  slos.clear();
  Histogram& h = histogram("test.slo.arm_us");
  h.set_exemplar_threshold(INT64_MAX);

  SloSpec spec;
  spec.name = "test.arm";
  spec.histogram = "test.slo.arm_us";
  spec.threshold_us = 500;
  slos.declare(spec);

  EXPECT_EQ(h.exemplar_threshold(), 500);
  const HealthReport report = HealthRegistry::instance().report();
  const auto* check = find_check(report, "slo.test.arm");
  ASSERT_NE(check, nullptr);
  // Cold operation: warming up, OK.
  EXPECT_EQ(check->result.level, HealthLevel::kOk);
  slos.clear();
  const HealthReport after_clear = HealthRegistry::instance().report();
  EXPECT_EQ(find_check(after_clear, "slo.test.arm"), nullptr);
}

TEST(Slo, BurnRateCountsObservationsAboveThreshold) {
  SloRegistry& slos = SloRegistry::instance();
  slos.clear();
  Histogram& h = histogram("test.slo.burn_us");

  SloSpec spec;
  spec.name = "test.burn";
  spec.histogram = "test.slo.burn_us";
  spec.threshold_us = 500;   // on the decade grid: accounting is exact
  spec.target = 0.99;        // budget: 1% may exceed 500us
  spec.min_samples = 100;
  slos.declare(spec);

  // 98 good, 2 bad out of 100: bad fraction 2%, budget 1% -> burn 2.
  for (int i = 0; i < 98; ++i) h.observe(10);
  h.observe(600);
  h.observe(700);

  const auto statuses = slos.peek();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].total, 100u);
  EXPECT_EQ(statuses[0].bad, 2u);
  EXPECT_NEAR(statuses[0].burn, 2.0, 1e-9);
  EXPECT_TRUE(statuses[0].window_mature);

  // Burn >= 1 with a mature window: the health plane shows DEGRADED.
  const HealthReport report = HealthRegistry::instance().report();
  const auto* check = find_check(report, "slo.test.burn");
  ASSERT_NE(check, nullptr);
  EXPECT_EQ(check->result.level, HealthLevel::kDegraded);
  slos.clear();
}

TEST(Slo, EvaluateRotatesTheWindowPeekDoesNot) {
  SloRegistry& slos = SloRegistry::instance();
  slos.clear();
  Histogram& h = histogram("test.slo.window_us");

  SloSpec spec;
  spec.name = "test.window";
  spec.histogram = "test.slo.window_us";
  spec.threshold_us = 500;
  spec.min_samples = 10;
  slos.declare(spec);

  for (int i = 0; i < 10; ++i) h.observe(600);  // every observation bad
  // peek() twice: the window never rotates.
  EXPECT_EQ(slos.peek()[0].window_total, 10u);
  EXPECT_EQ(slos.peek()[0].window_total, 10u);

  // evaluate() reports the same pre-rotation state, then rotates.
  const auto before = slos.evaluate();
  EXPECT_EQ(before[0].window_total, 10u);
  EXPECT_GT(before[0].window_burn, 1.0);
  const auto after = slos.peek();
  EXPECT_EQ(after[0].window_total, 0u);       // fresh window
  EXPECT_EQ(after[0].total, 10u);             // cumulative view unaffected
  EXPECT_GT(after[0].burn, 1.0);
  slos.clear();
}

TEST(Slo, FailingBurnEscalatesHealthToFailing) {
  SloRegistry& slos = SloRegistry::instance();
  slos.clear();
  Histogram& h = histogram("test.slo.failing_us");

  SloSpec spec;
  spec.name = "test.failing";
  spec.histogram = "test.slo.failing_us";
  spec.threshold_us = 500;
  spec.target = 0.99;
  spec.failing_burn = 10.0;
  spec.min_samples = 100;
  slos.declare(spec);

  // Every observation bad: burn = 1.0 / 0.01 = 100 >> failing_burn.
  for (int i = 0; i < 100; ++i) h.observe(5000);
  const HealthReport report = HealthRegistry::instance().report();
  const auto* check = find_check(report, "slo.test.failing");
  ASSERT_NE(check, nullptr);
  EXPECT_EQ(check->result.level, HealthLevel::kFailing);
  slos.clear();
}

TEST(Slo, BuiltinSlosDeclareTheStandardTriple) {
  install_builtin_slos();
  const auto statuses = SloRegistry::instance().peek();
  std::vector<std::string> names;
  for (const auto& s : statuses) names.push_back(s.spec.name);
  EXPECT_NE(std::find(names.begin(), names.end(), "switchboard.rpc"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "drbac.prove"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "views.sync"), names.end());
  // ISSUE 9 added the event-loop responsiveness objective to the builtins.
  EXPECT_NE(std::find(names.begin(), names.end(), "loop.lag"), names.end());
  // A quiet process must not fail its objectives.
  const HealthReport report = HealthRegistry::instance().report();
  for (const char* name : {"slo.switchboard.rpc", "slo.drbac.prove",
                           "slo.views.sync", "slo.loop.lag"}) {
    const auto* check = find_check(report, name);
    ASSERT_NE(check, nullptr) << name;
    EXPECT_EQ(check->result.level, HealthLevel::kOk) << name;
  }
}

TEST(Slo, JsonRenderingCarriesBurnAndWindowFields) {
  SloRegistry& slos = SloRegistry::instance();
  slos.clear();
  SloSpec spec;
  spec.name = "test.json";
  spec.histogram = "test.slo.json_us";
  spec.threshold_us = 200;
  slos.declare(spec);
  const std::string json = slo_to_json(slos.peek());
  EXPECT_NE(json.find("\"version\":\"slo-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.json\""), std::string::npos);
  EXPECT_NE(json.find("\"threshold_us\":200"), std::string::npos);
  EXPECT_NE(json.find("\"burn\":"), std::string::npos);
  EXPECT_NE(json.find("\"window_mature\":"), std::string::npos);
  slos.clear();
}

// ------------------------------------------------------------- contention

TEST(Contention, ContendedRankedLockFeedsHookMetricsAndReport) {
  install_lock_contention_profiler();
  reset_contention();
  util::RankedMutex<std::mutex> mu(util::LockRank::kRepository,
                                   "test.contended");

  // Force real contention: one thread camps on the lock while another
  // blocks on it.
  std::atomic<bool> locked{false};
  std::thread holder([&] {
    mu.lock();
    locked.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    mu.unlock();
  });
  while (!locked.load()) std::this_thread::yield();
  mu.lock();  // blocks until the holder lets go -> contention sample
  mu.unlock();
  holder.join();

  const ContentionReport report = contention_report();
  const ContentionSite* site = nullptr;
  for (const auto& s : report.sites) {
    if (s.site == "test.contended") site = &s;
  }
  ASSERT_NE(site, nullptr);
  EXPECT_GE(site->samples, 1u);
  EXPECT_GT(site->total_wait_ns, 0);
  EXPECT_EQ(site->rank, static_cast<int>(util::LockRank::kRepository));
  EXPECT_GE(counter("psf.lock.test.contended.contended").value(), 1u);
  EXPECT_GE(histogram("psf.lock.test.contended.wait_us").count(), 1u);

  const std::string json = contention_to_json(report);
  EXPECT_NE(json.find("\"version\":\"contention-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"site\":\"test.contended\""), std::string::npos);
}

TEST(Contention, DisabledGateSuppressesSampling) {
  install_lock_contention_profiler();
  reset_contention();
  set_contention_profiling(false);
  util::RankedMutex<std::mutex> mu(util::LockRank::kRepository,
                                   "test.gated");
  std::atomic<bool> locked{false};
  std::thread holder([&] {
    mu.lock();
    locked.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    mu.unlock();
  });
  while (!locked.load()) std::this_thread::yield();
  mu.lock();
  mu.unlock();
  holder.join();
  set_contention_profiling(true);

  for (const auto& s : contention_report().sites) {
    EXPECT_NE(s.site, "test.gated") << "sampled while the gate was off";
  }
}

TEST(Contention, UncontendedLockNeverSamples) {
  install_lock_contention_profiler();
  reset_contention();
  util::RankedMutex<std::mutex> mu(util::LockRank::kGuardCache,
                                   "test.uncontended");
  for (int i = 0; i < 100; ++i) {
    mu.lock();
    mu.unlock();
  }
  for (const auto& s : contention_report().sites) {
    EXPECT_NE(s.site, "test.uncontended");
  }
}

}  // namespace
}  // namespace psf::obs
