// Tests for the extension features: the credential wire format, the
// threaded heartbeat driver, and the policy translation bridge (the paper's
// §6 future-work item), plus fuzz suites over every external input surface.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "drbac/credential.hpp"
#include "mail/components.hpp"
#include "minilang/interp.hpp"
#include "minilang/lexer.hpp"
#include "minilang/parser.hpp"
#include "psf/policy_bridge.hpp"
#include "switchboard/authorizer.hpp"
#include "switchboard/heartbeat.hpp"
#include "util/rng.hpp"
#include "views/vig.hpp"
#include "xml/xml.hpp"

namespace psf {
namespace {

using drbac::Principal;
using minilang::Value;

// --------------------------------------------------- credential wire format

struct WireWorld {
  util::Rng rng{31};
  drbac::Entity issuer = drbac::Entity::create("Comp.NY", rng);
  drbac::Entity subject = drbac::Entity::create("Alice", rng);
};

TEST(CredentialWire, RoundTripPreservesEverything) {
  WireWorld w;
  auto original = drbac::issue(
      w.issuer, Principal::of_entity(w.subject),
      drbac::role_of(w.issuer, "Member"),
      {{"Trust", drbac::Attribute::make_range("Trust", 2, 9)},
       {"Secure", drbac::Attribute::make_set("Secure", {"true"})}},
      /*assignment=*/true, /*issued=*/5, /*expires=*/99, /*serial=*/1234,
      drbac::DiscoveryTags{false, true});

  auto decoded = drbac::decode_delegation(drbac::encode_delegation(*original));
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  const drbac::Delegation& d = *decoded.value();
  EXPECT_EQ(d.serial, 1234u);
  EXPECT_EQ(d.subject.display(), "Alice");
  EXPECT_EQ(d.target.display(), "Comp.NY.Member");
  EXPECT_TRUE(d.assignment);
  EXPECT_EQ(d.attributes.size(), 2u);
  EXPECT_EQ(d.attributes.at("Trust").lo, 2);
  EXPECT_EQ(d.issued_at, 5);
  EXPECT_EQ(d.expires_at, 99);
  EXPECT_FALSE(d.tags.searchable_from_subject);
  EXPECT_TRUE(d.tags.searchable_from_object);
  // The signature survives and still verifies.
  EXPECT_TRUE(d.verify_signature());
  EXPECT_EQ(d.display(), original->display());
}

TEST(CredentialWire, TamperedWireFailsSignature) {
  WireWorld w;
  auto original = drbac::issue(w.issuer, Principal::of_entity(w.subject),
                               drbac::role_of(w.issuer, "Member"), {}, false,
                               0, 0, 7);
  util::Bytes wire = drbac::encode_delegation(*original);
  // Flip a byte inside the subject *fingerprint* (the authoritative
  // identity; display names are deliberately unsigned).
  const std::string fp = w.subject.fingerprint();
  const util::Bytes needle = util::to_bytes(fp);
  auto it = std::search(wire.begin(), wire.end(), needle.begin(), needle.end());
  ASSERT_NE(it, wire.end());
  *it = *it == 'a' ? 'b' : 'a';
  auto decoded = drbac::decode_delegation(wire);
  if (decoded.ok()) {
    EXPECT_FALSE(decoded.value()->verify_signature());
  } else {
    SUCCEED();  // structural rejection is fine too
  }
}

TEST(CredentialWire, DecodedCredentialUsableInProofs) {
  WireWorld w;
  drbac::Repository repo;
  auto original = drbac::issue(w.issuer, Principal::of_entity(w.subject),
                               drbac::role_of(w.issuer, "Member"), {}, false,
                               0, 0, repo.next_serial());
  auto decoded =
      drbac::decode_delegation(drbac::encode_delegation(*original));
  ASSERT_TRUE(decoded.ok());
  repo.add(decoded.value());
  drbac::Engine engine(&repo);
  EXPECT_TRUE(engine
                  .prove(Principal::of_entity(w.subject),
                         drbac::role_of(w.issuer, "Member"), 0)
                  .ok());
}

TEST(CredentialWire, FuzzDecodeNeverCrashes) {
  util::Rng rng(404);
  for (int i = 0; i < 1000; ++i) {
    const util::Bytes garbage = rng.next_bytes(rng.next_below(200));
    (void)drbac::decode_delegation(garbage);
  }
  // Truncations of a valid encoding must all be rejected cleanly.
  WireWorld w;
  auto original = drbac::issue(w.issuer, Principal::of_entity(w.subject),
                               drbac::role_of(w.issuer, "Member"), {}, false,
                               0, 0, 7);
  const util::Bytes wire = drbac::encode_delegation(*original);
  for (std::size_t cut = 0; cut < wire.size(); cut += 3) {
    util::Bytes truncated(wire.begin(),
                          wire.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(drbac::decode_delegation(truncated).ok());
  }
}

// ------------------------------------------------- repository replication

TEST(RepositorySync, SnapshotMergeReplicatesCredentialsAndRevocations) {
  WireWorld w;
  drbac::Repository home;
  auto kept = drbac::issue(w.issuer, Principal::of_entity(w.subject),
                           drbac::role_of(w.issuer, "Member"), {}, false, 0,
                           0, home.next_serial());
  auto dropped = drbac::issue(w.issuer, Principal::of_entity(w.subject),
                              drbac::role_of(w.issuer, "Partner"), {}, false,
                              0, 0, home.next_serial());
  home.add(kept);
  home.add(dropped);
  home.revoke(dropped->serial);

  drbac::Repository mirror;
  auto merged = mirror.merge_snapshot(home.snapshot());
  ASSERT_TRUE(merged.ok()) << merged.error().message;
  EXPECT_EQ(merged.value().added, 2u);
  EXPECT_EQ(merged.value().revoked, 1u);
  EXPECT_EQ(merged.value().rejected, 0u);

  // Proofs work against the mirror; the revocation carried over.
  drbac::Engine engine(&mirror);
  EXPECT_TRUE(engine
                  .prove(Principal::of_entity(w.subject),
                         drbac::role_of(w.issuer, "Member"), 0)
                  .ok());
  EXPECT_FALSE(engine
                   .prove(Principal::of_entity(w.subject),
                          drbac::role_of(w.issuer, "Partner"), 0)
                   .ok());

  // Idempotent re-merge.
  auto again = mirror.merge_snapshot(home.snapshot());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().added, 0u);
  EXPECT_EQ(again.value().revoked, 0u);
}

TEST(RepositorySync, MergeRejectsForgedEntries) {
  WireWorld w;
  drbac::Repository home;
  auto good = drbac::issue(w.issuer, Principal::of_entity(w.subject),
                           drbac::role_of(w.issuer, "Member"), {}, false, 0,
                           0, home.next_serial());
  home.add(good);
  util::Bytes snapshot = home.snapshot();
  // Corrupt the embedded credential's fingerprint bytes.
  const util::Bytes needle = util::to_bytes(w.subject.fingerprint());
  auto it = std::search(snapshot.begin(), snapshot.end(), needle.begin(),
                        needle.end());
  ASSERT_NE(it, snapshot.end());
  *it = *it == 'a' ? 'b' : 'a';

  drbac::Repository mirror;
  auto merged = mirror.merge_snapshot(snapshot);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().added, 0u);
  EXPECT_EQ(merged.value().rejected, 1u);
}

TEST(RepositorySync, MergeRevocationFiresLocalMonitors) {
  WireWorld w;
  drbac::Repository home;
  auto credential = drbac::issue(w.issuer, Principal::of_entity(w.subject),
                                 drbac::role_of(w.issuer, "Member"), {},
                                 false, 0, 0, home.next_serial());
  home.add(credential);

  drbac::Repository mirror;
  ASSERT_TRUE(mirror.merge_snapshot(home.snapshot()).ok());
  std::vector<std::uint64_t> fired;
  mirror.subscribe([&](std::uint64_t serial) { fired.push_back(serial); });

  home.revoke(credential->serial);
  ASSERT_TRUE(mirror.merge_snapshot(home.snapshot()).ok());
  EXPECT_EQ(fired, std::vector<std::uint64_t>{credential->serial});
}

TEST(RepositorySync, MergedSerialsDoNotCollideWithLocalIssues) {
  WireWorld w;
  drbac::Repository home;
  for (int i = 0; i < 5; ++i) {
    home.add(drbac::issue(w.issuer, Principal::of_entity(w.subject),
                          drbac::role_of(w.issuer, "r" + std::to_string(i)),
                          {}, false, 0, 0, home.next_serial()));
  }
  drbac::Repository mirror;
  ASSERT_TRUE(mirror.merge_snapshot(home.snapshot()).ok());
  EXPECT_GT(mirror.next_serial(), 5u);
}

TEST(RepositorySync, FuzzMergeNeverCrashes) {
  util::Rng rng(2222);
  drbac::Repository repo;
  for (int i = 0; i < 300; ++i) {
    (void)repo.merge_snapshot(rng.next_bytes(rng.next_below(256)));
  }
  // Truncations of a valid snapshot.
  WireWorld w;
  drbac::Repository home;
  home.add(drbac::issue(w.issuer, Principal::of_entity(w.subject),
                        drbac::role_of(w.issuer, "Member"), {}, false, 0, 0,
                        home.next_serial()));
  const util::Bytes snapshot = home.snapshot();
  for (std::size_t cut = 0; cut < snapshot.size(); cut += 5) {
    util::Bytes truncated(snapshot.begin(),
                          snapshot.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(repo.merge_snapshot(truncated).ok());
  }
}

// --------------------------------------------------------- heartbeat driver

struct ChannelWorld {
  util::Rng rng{2025};
  std::shared_ptr<util::SimClock> clock = std::make_shared<util::SimClock>();
  switchboard::Network net;
  drbac::Repository repo;
  drbac::Entity guard = drbac::Entity::create("G", rng);
  drbac::Entity client = drbac::Entity::create("C", rng);
  drbac::Entity server = drbac::Entity::create("S", rng);
  switchboard::Switchboard a{"a", &net, clock};
  switchboard::Switchboard b{"b", &net, clock};

  ChannelWorld() {
    net.connect("a", "b", {util::kMillisecond, 0, true});
    switchboard::AuthorizationSuite suite;
    suite.identity = server;
    suite.authorizer = std::make_shared<switchboard::AcceptAllAuthorizer>();
    b.set_suite(suite);
  }

  std::shared_ptr<switchboard::Connection> connect() {
    switchboard::AuthorizationSuite suite;
    suite.identity = client;
    suite.authorizer = std::make_shared<switchboard::AcceptAllAuthorizer>();
    return a.connect(b, suite, rng).value();
  }
};

TEST(HeartbeatDriver, BeatsUntilStopped) {
  ChannelWorld w;
  auto conn = w.connect();
  switchboard::HeartbeatDriver driver(conn, std::chrono::milliseconds(5));
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  driver.stop();
  EXPECT_GT(driver.beats(), 2u);
  EXPECT_GT(conn->stats().heartbeats, 0u);
  EXPECT_TRUE(conn->open());
}

TEST(HeartbeatDriver, StopsWhenConnectionDies) {
  ChannelWorld w;
  auto conn = w.connect();
  switchboard::HeartbeatDriver driver(conn, std::chrono::milliseconds(5));
  w.net.disconnect("a", "b");
  // The next beat notices liveness loss and the driver stops itself.
  for (int i = 0; i < 100 && driver.running(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_FALSE(conn->open());
  EXPECT_FALSE(driver.running());
}

TEST(HeartbeatDriver, DestructorJoinsCleanly) {
  ChannelWorld w;
  auto conn = w.connect();
  {
    switchboard::HeartbeatDriver driver(conn, std::chrono::milliseconds(1));
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }  // destructor stops + joins; no crash, no leak under ASAN
  SUCCEED();
}

// ------------------------------------------------------------ policy bridge

TEST(PolicyBridge, TranslatesCapabilitiesToRoles) {
  util::Rng rng(5);
  drbac::Repository repo;
  framework::PolicyBridge bridge("LegacyACL", &repo, rng);
  drbac::Entity user = drbac::Entity::create("User", rng);
  bridge.register_principal(Principal::of_entity(user));

  framework::CapabilityPolicy policy;
  policy.grants[user.fingerprint()] = {"read-mail", "send-mail"};
  auto result = bridge.sync(policy);
  EXPECT_EQ(result.issued, 2u);
  EXPECT_EQ(result.revoked, 0u);

  drbac::Engine engine(&repo);
  EXPECT_TRUE(engine
                  .prove(Principal::of_entity(user),
                         bridge.role_for("read-mail"), 0)
                  .ok());
  EXPECT_FALSE(engine
                   .prove(Principal::of_entity(user),
                          bridge.role_for("admin"), 0)
                   .ok());
}

TEST(PolicyBridge, SyncIsIdempotent) {
  util::Rng rng(6);
  drbac::Repository repo;
  framework::PolicyBridge bridge("LegacyACL", &repo, rng);
  drbac::Entity user = drbac::Entity::create("User", rng);
  bridge.register_principal(Principal::of_entity(user));
  framework::CapabilityPolicy policy;
  policy.grants[user.fingerprint()] = {"read-mail"};
  bridge.sync(policy);
  auto again = bridge.sync(policy);
  EXPECT_EQ(again.issued, 0u);
  EXPECT_EQ(again.revoked, 0u);
  EXPECT_EQ(bridge.live_translations(), 1u);
}

TEST(PolicyBridge, DroppedEntriesAreRevoked) {
  util::Rng rng(7);
  drbac::Repository repo;
  framework::PolicyBridge bridge("LegacyACL", &repo, rng);
  drbac::Entity user = drbac::Entity::create("User", rng);
  bridge.register_principal(Principal::of_entity(user));
  framework::CapabilityPolicy policy;
  policy.grants[user.fingerprint()] = {"read-mail", "send-mail"};
  bridge.sync(policy);

  policy.grants[user.fingerprint()] = {"read-mail"};  // send-mail dropped
  auto result = bridge.sync(policy);
  EXPECT_EQ(result.revoked, 1u);

  drbac::Engine engine(&repo);
  EXPECT_TRUE(engine
                  .prove(Principal::of_entity(user),
                         bridge.role_for("read-mail"), 0)
                  .ok());
  EXPECT_FALSE(engine
                   .prove(Principal::of_entity(user),
                          bridge.role_for("send-mail"), 0)
                   .ok());
}

TEST(PolicyBridge, BridgedRolesChainIntoAppRoles) {
  // The point of the translation service: a domain running capability lists
  // participates in dRBAC proofs via ordinary role mapping.
  util::Rng rng(8);
  drbac::Repository repo;
  framework::PolicyBridge bridge("LegacyACL", &repo, rng);
  drbac::Entity user = drbac::Entity::create("User", rng);
  drbac::Entity app = drbac::Entity::create("App", rng);
  bridge.register_principal(Principal::of_entity(user));
  framework::CapabilityPolicy policy;
  policy.grants[user.fingerprint()] = {"mail-user"};
  bridge.sync(policy);
  // [ LegacyACL.mail-user -> App.Member ] App
  repo.add(drbac::issue(app,
                        Principal::of_role_ref(bridge.role_for("mail-user")),
                        drbac::role_of(app, "Member"), {}, false, 0, 0,
                        repo.next_serial()));
  drbac::Engine engine(&repo);
  auto proof =
      engine.prove(Principal::of_entity(user), drbac::role_of(app, "Member"), 0);
  ASSERT_TRUE(proof.ok()) << proof.error().message;
  EXPECT_EQ(proof.value().credentials.size(), 2u);

  // Revoking at the legacy side invalidates the cross-domain proof.
  framework::CapabilityPolicy empty;
  bridge.sync(empty);
  EXPECT_FALSE(engine.validate(proof.value(), 0));
}

// -------------------------------------------------------------- fuzz suites

TEST(Fuzz, XmlParserNeverCrashes) {
  util::Rng rng(1001);
  for (int i = 0; i < 500; ++i) {
    const util::Bytes garbage = rng.next_bytes(rng.next_below(128));
    (void)xml::parse(std::string(garbage.begin(), garbage.end()));
  }
  // Structured-ish garbage.
  const char* nasty[] = {
      "<", "<a", "<a b", "<a b=", "<a b=>", "<a></b>", "<a><a><a>",
      "<a/><b/>", "<a>&unknown;</a>", "<![CDATA[", "<!--", "<a b='",
      "<a>\xff\xfe</a>", "<<<>>>", "</a>", "<a a=1 a=2/>",
  };
  for (const char* s : nasty) {
    (void)xml::parse(s);
  }
  SUCCEED();
}

TEST(Fuzz, MiniLangLexerParserNeverCrash) {
  util::Rng rng(1002);
  for (int i = 0; i < 500; ++i) {
    const util::Bytes garbage = rng.next_bytes(rng.next_below(96));
    const std::string source(garbage.begin(), garbage.end());
    auto tokens = minilang::lex(source);
    if (tokens.ok()) {
      (void)minilang::parse_block_source(source);
      (void)minilang::parse_expression_source(source);
    }
  }
  const char* nasty[] = {
      "var", "var ;", "var x", "var x =", "if", "if (", "if (x) {",
      "while (true)", "return", "a.b.c.d.e(", "((((((((((", "1 + + 2",
      "x = = 1;", "\"unterminated", "a[1[2[3",
  };
  for (const char* s : nasty) {
    (void)minilang::parse_block_source(s);
  }
  SUCCEED();
}

TEST(Fuzz, ViewDefinitionFromRandomXmlNeverCrashes) {
  util::Rng rng(1003);
  const char* fragments[] = {
      "<View name=\"V\">", "<Represents name=\"MailClient\"/>",
      "<Restricts>", "</Restricts>", "<Interface name=\"MessageI\"/>",
      "<Adds_Methods>", "</Adds_Methods>", "<MSign>f()</MSign>",
      "<MBody>x;</MBody>", "</View>", "<Field name=\"f\"/>",
  };
  for (int i = 0; i < 300; ++i) {
    std::string doc;
    const std::size_t parts = 1 + rng.next_below(8);
    for (std::size_t p = 0; p < parts; ++p) {
      doc += fragments[rng.next_below(std::size(fragments))];
    }
    (void)views::ViewDefinition::from_xml(doc);
  }
  SUCCEED();
}

TEST(Fuzz, VigOnRandomDefinitionsNeverCrashes) {
  // Random but schema-valid definitions: VIG must either generate or
  // produce diagnostics, never crash.
  util::Rng rng(1004);
  minilang::ClassRegistry registry;
  mail::register_all(registry);
  const char* interfaces[] = {"MessageI", "AddressI", "NotesI", "MailI",
                              "GhostI"};
  const char* types[] = {"local", "rmi", "switchboard"};
  const char* bodies[] = {"return null;", "return missing;", "helper(1);",
                          "var x = 1; return x;", "push(inbox, 1); return 0;"};
  for (int i = 0; i < 200; ++i) {
    std::string xml = "<View name=\"F" + std::to_string(i) + "\">";
    xml += "<Represents name=\"MailClient\"/>";
    xml += "<Restricts>";
    const std::size_t iface_count = rng.next_below(4);
    for (std::size_t k = 0; k < iface_count; ++k) {
      xml += std::string("<Interface name=\"") +
             interfaces[rng.next_below(std::size(interfaces))] + "\" type=\"" +
             types[rng.next_below(std::size(types))] + "\"/>";
    }
    xml += "</Restricts><Adds_Methods>";
    if (rng.next_below(4) != 0) {
      xml += "<MSign>constructor()</MSign><MBody>return null;</MBody>";
    }
    xml += std::string("<MSign>extra()</MSign><MBody>") +
           bodies[rng.next_below(std::size(bodies))] + "</MBody>";
    xml += "</Adds_Methods></View>";
    auto def = views::ViewDefinition::from_xml(xml);
    if (!def.ok()) continue;
    views::Vig vig(&registry);
    (void)vig.generate(def.value());
  }
  SUCCEED();
}

TEST(Fuzz, ConnectionUnsealOnRandomFramesNeverCrashes) {
  ChannelWorld w;
  auto conn = w.connect();
  util::Rng rng(1005);
  for (int i = 0; i < 500; ++i) {
    const util::Bytes garbage = rng.next_bytes(rng.next_below(160));
    auto r = conn->unseal(switchboard::Connection::End::kB, garbage);
    EXPECT_FALSE(r.ok());
  }
}

}  // namespace
}  // namespace psf
