// Sampling-profiler unit tests (ISSUE 9): span-stack capture, loop-phase
// and lock-site attribution, truncation, formatting, and one real SIGPROF
// round trip. Deterministic paths go through sample_current_thread(), which
// shares the append path with the signal handler.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "util/lock_rank.hpp"

namespace profile = psf::obs::profile;
using psf::obs::ScopedSpan;

namespace {

bool registered() {
  static const bool ok = profile::register_thread("test-main");
  return ok;
}

/// The report entry for the calling test's samples, or nullptr.
const profile::Report::Entry* find_entry(const profile::Report& report,
                                         const std::string& frame) {
  for (const auto& entry : report.entries) {
    for (const auto& f : entry.frames) {
      if (f == frame) return &entry;
    }
  }
  return nullptr;
}

}  // namespace

TEST(Profile, SampleCapturesSpanStackInOrder) {
  if (!registered()) GTEST_SKIP() << "profiler compiled out";
  profile::clear();
  {
    ScopedSpan outer("profile.test.outer");
    ScopedSpan inner("profile.test.inner");
    ASSERT_TRUE(profile::sample_current_thread());
  }
  const profile::Report report = profile::report();
  const auto* entry = find_entry(report, "profile.test.inner");
  ASSERT_NE(entry, nullptr);
  // Root-first: thread, then outermost span first.
  ASSERT_GE(entry->frames.size(), 3u);
  EXPECT_EQ(entry->frames[0], "thread:test-main");
  EXPECT_EQ(entry->frames[1], "profile.test.outer");
  EXPECT_EQ(entry->frames[2], "profile.test.inner");
  EXPECT_EQ(entry->count, 1u);
}

TEST(Profile, SampleWithNoOpenSpanIsJustTheThreadRoot) {
  if (!registered()) GTEST_SKIP() << "profiler compiled out";
  profile::clear();
  ASSERT_TRUE(profile::sample_current_thread());
  const profile::Report report = profile::report();
  ASSERT_FALSE(report.entries.empty());
  EXPECT_EQ(report.entries[0].frames,
            std::vector<std::string>{"thread:test-main"});
}

TEST(Profile, LoopPhaseAppearsAsPhaseFrame) {
  if (!registered()) GTEST_SKIP() << "profiler compiled out";
  profile::clear();
  profile::set_thread_phase(profile::LoopPhase::kTaskRun);
  {
    ScopedSpan span("profile.test.phased");
    ASSERT_TRUE(profile::sample_current_thread());
  }
  profile::set_thread_phase(profile::LoopPhase::kNone);
  const profile::Report report = profile::report();
  const auto* entry = find_entry(report, "profile.test.phased");
  ASSERT_NE(entry, nullptr);
  ASSERT_GE(entry->frames.size(), 3u);
  EXPECT_EQ(entry->frames[0], "thread:test-main");
  EXPECT_EQ(entry->frames[1], "phase:task_run");
  EXPECT_EQ(entry->frames[2], "profile.test.phased");
}

TEST(Profile, LoopPhaseNamesAreStable) {
  EXPECT_STREQ(profile::loop_phase_name(profile::LoopPhase::kNone), "none");
  EXPECT_STREQ(profile::loop_phase_name(profile::LoopPhase::kPollWait),
               "poll_wait");
  EXPECT_STREQ(profile::loop_phase_name(profile::LoopPhase::kFdDispatch),
               "fd_dispatch");
  EXPECT_STREQ(profile::loop_phase_name(profile::LoopPhase::kTaskRun),
               "task_run");
  EXPECT_STREQ(profile::loop_phase_name(profile::LoopPhase::kTimerFire),
               "timer_fire");
}

namespace {

// A mutex whose first try_lock refuses, forcing RankedMutex onto its
// contended path — where the wait slot must be published — and whose
// blocking lock() then samples: the deterministic stand-in for a SIGPROF
// landing while the thread is blocked on a ranked site.
struct SampleInLockMutex {
  bool refuse_once = true;
  bool sampled_in_lock = false;
  bool try_lock() {
    if (refuse_once) {
      refuse_once = false;
      return false;
    }
    return true;
  }
  void lock() { sampled_in_lock = profile::sample_current_thread(); }
  void unlock() {}
};

}  // namespace

TEST(Profile, BlockedOnRankedLockShowsLockLeafFrame) {
  if (!registered()) GTEST_SKIP() << "profiler compiled out";
  profile::clear();
  psf::util::RankedMutex<SampleInLockMutex> mu(
      psf::util::LockRank::kRepository, "profile.test.site");
  {
    ScopedSpan span("profile.test.locker");
    mu.lock();  // try_lock refuses once -> contended path -> sample inside
    mu.unlock();
  }
  const profile::Report report = profile::report();
  const auto* entry = find_entry(report, "lock:profile.test.site");
  ASSERT_NE(entry, nullptr);
  // The lock site is the leaf, under the span that was blocked.
  EXPECT_EQ(entry->frames.back(), "lock:profile.test.site");
  EXPECT_NE(find_entry(report, "profile.test.locker"), nullptr);

  // The slot was cleared on acquisition: a fresh sample has no lock frame.
  profile::clear();
  ASSERT_TRUE(profile::sample_current_thread());
  EXPECT_EQ(find_entry(profile::report(), "lock:profile.test.site"), nullptr);
}

TEST(Profile, DeepStackTruncatesKeepingOutermostFrames) {
  if (!registered()) GTEST_SKIP() << "profiler compiled out";
  profile::clear();
  const std::uint64_t truncated_before = profile::report().truncated;
  // 20 nested spans > kMaxFrames (12) and > the 16-entry name stack.
  std::vector<std::unique_ptr<ScopedSpan>> spans;
  static const char* kNames[20] = {
      "d00", "d01", "d02", "d03", "d04", "d05", "d06", "d07", "d08", "d09",
      "d10", "d11", "d12", "d13", "d14", "d15", "d16", "d17", "d18", "d19"};
  for (const char* name : kNames) {
    spans.push_back(std::make_unique<ScopedSpan>(name));
  }
  ASSERT_TRUE(profile::sample_current_thread());
  spans.clear();  // unwind pops depth back to zero symmetrically

  const profile::Report report = profile::report();
  EXPECT_EQ(report.truncated, truncated_before + 1);
  const auto* entry = find_entry(report, "d00");
  ASSERT_NE(entry, nullptr);
  // thread root + kMaxFrames outermost spans, nothing deeper.
  EXPECT_EQ(entry->frames.size(), 1 + profile::kMaxFrames);
  EXPECT_EQ(entry->frames[1], "d00");
  EXPECT_EQ(entry->frames.back(), "d11");
  EXPECT_EQ(find_entry(report, "d12"), nullptr);

  // The symmetric pop left the stack healthy: a fresh shallow sample works.
  profile::clear();
  {
    ScopedSpan span("profile.test.after_deep");
    ASSERT_TRUE(profile::sample_current_thread());
  }
  EXPECT_NE(find_entry(profile::report(), "profile.test.after_deep"),
            nullptr);
}

TEST(Profile, FoldedTextAndSpeedscopeJsonRenderTheEntries) {
  if (!registered()) GTEST_SKIP() << "profiler compiled out";
  profile::clear();
  {
    ScopedSpan a("profile.test.fold_a");
    profile::sample_current_thread();
    profile::sample_current_thread();
  }
  {
    ScopedSpan b("profile.test.fold_b");
    profile::sample_current_thread();
  }
  const profile::Report report = profile::report();
  const std::string folded = profile::to_folded(report);
  EXPECT_NE(folded.find("thread:test-main;profile.test.fold_a 2"),
            std::string::npos)
      << folded;
  EXPECT_NE(folded.find("thread:test-main;profile.test.fold_b 1"),
            std::string::npos);
  // Highest count first.
  EXPECT_LT(folded.find("fold_a"), folded.find("fold_b"));

  const std::string json = profile::to_speedscope_json(report);
  EXPECT_NE(
      json.find(
          "\"$schema\":\"https://www.speedscope.app/file-format-schema.json\""),
      std::string::npos);
  EXPECT_NE(json.find("\"type\":\"sampled\""), std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"profile.test.fold_a\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"endValue\":3"), std::string::npos);
}

TEST(Profile, StatusJsonCarriesThreadCounters) {
  if (!registered()) GTEST_SKIP() << "profiler compiled out";
  profile::clear();
  profile::sample_current_thread();
  const std::string status = profile::status_json();
  EXPECT_NE(status.find("\"version\":\"profile-v1\""), std::string::npos);
  EXPECT_NE(status.find("\"compiled\":true"), std::string::npos);
  EXPECT_NE(status.find("\"name\":\"test-main\""), std::string::npos);
  EXPECT_NE(status.find("\"samples\":"), std::string::npos);
}

TEST(Profile, ClearRewindsEntriesButKeepsCumulativeCounters) {
  if (!registered()) GTEST_SKIP() << "profiler compiled out";
  profile::sample_current_thread();
  const std::uint64_t total = profile::report().samples;
  ASSERT_GT(total, 0u);
  profile::clear();
  const profile::Report report = profile::report();
  EXPECT_TRUE(report.entries.empty());
  EXPECT_EQ(report.samples, total);  // counters are monotonic
}

TEST(Profile, RealTimerSamplesABusySpanAndStopsCleanly) {
  if (!registered()) GTEST_SKIP() << "profiler compiled out";
  profile::clear();
  const std::uint64_t before = profile::report().samples;
  ASSERT_TRUE(profile::start({.interval_us = 500}));
  EXPECT_TRUE(profile::running());
  EXPECT_EQ(profile::interval_us(), 500u);

  // CPU-time timers are serviced at kernel-tick granularity (~4-10 ms), so
  // burn CPU until at least two ticks worth of samples landed. Generous
  // wall deadline for sanitizer builds.
  volatile std::uint64_t sink = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  std::uint64_t after = before;
  while (after < before + 2 &&
         std::chrono::steady_clock::now() < deadline) {
    ScopedSpan span("profile.test.busy");
    for (int i = 0; i < 100'000; ++i) sink = sink + static_cast<std::uint64_t>(i);
    after = profile::report().samples;
  }
  profile::stop();
  EXPECT_FALSE(profile::running());
  ASSERT_GE(after, before + 2) << "no SIGPROF samples after 10s of CPU burn";

  // The busy span dominates the captured profile.
  EXPECT_NE(find_entry(profile::report(), "profile.test.busy"), nullptr);

  // Stopped means stopped: no new samples accrue while parked.
  const std::uint64_t parked = profile::report().samples;
  volatile std::uint64_t sink2 = 0;
  for (int i = 0; i < 2'000'000; ++i) {
    sink2 = sink2 + static_cast<std::uint64_t>(i);
  }
  EXPECT_EQ(profile::report().samples, parked);
}

TEST(Profile, RestartWhileRunningReconfiguresInterval) {
  if (!registered()) GTEST_SKIP() << "profiler compiled out";
  ASSERT_TRUE(profile::start({.interval_us = 1000}));
  EXPECT_EQ(profile::interval_us(), 1000u);
  ASSERT_TRUE(profile::start({.interval_us = 250}));  // reconfigure in place
  EXPECT_EQ(profile::interval_us(), 250u);
  EXPECT_TRUE(profile::running());
  profile::stop();
}

TEST(Profile, UnregisteredThreadCannotSample) {
  std::atomic<bool> sampled{true};
  std::thread t([&] { sampled.store(profile::sample_current_thread()); });
  t.join();
  EXPECT_FALSE(sampled.load());
}

TEST(Profile, EmptyReportStillRendersValidDocuments) {
  const profile::Report empty;
  EXPECT_EQ(profile::to_folded(empty), "");
  const std::string json = profile::to_speedscope_json(empty);
  EXPECT_NE(json.find("\"frames\":[]"), std::string::npos);
  EXPECT_NE(json.find("\"endValue\":0"), std::string::npos);
}
