// Lock-rank checker (util/lock_rank.hpp). This target compiles with
// PSF_LOCK_RANK defined (see tests/CMakeLists.txt) so the checker is active
// regardless of build type; in plain Debug builds it is active everywhere.
#include <gtest/gtest.h>

#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>

#include "util/lock_rank.hpp"

namespace psf::util {
namespace {

static_assert(PSF_LOCK_RANK_ENABLED,
              "lock_rank_test must build with the checker enabled");

// Test mutexes are function-local statics, not stack locals: glibc's
// std::mutex has a trivial destructor (no pthread_mutex_destroy), so TSan's
// deadlock detector never forgets a destroyed mutex — stack-address reuse
// across tests would alias unrelated mutexes into phantom lock-order cycles.

struct Violation {
  std::string acquiring;
  int acquiring_rank = 0;
  std::string held;
  int held_rank = 0;
};

// The handler API is a plain function pointer (callable from the hot path
// with no allocation), so the recording sink is a global.
Violation g_last;
int g_count = 0;

void record(const char* acquiring, int acquiring_rank, const char* held,
            int held_rank) {
  g_last = {acquiring, acquiring_rank, held, held_rank};
  ++g_count;
}

class LockRankTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_last = {};
    g_count = 0;
    previous_ = lock_rank::set_violation_handler(&record);
  }
  void TearDown() override { lock_rank::set_violation_handler(previous_); }

  lock_rank::ViolationHandler previous_ = nullptr;
};

TEST_F(LockRankTest, IncreasingOrderIsSilent) {
  static RankedMutex<std::mutex> repo(LockRank::kRepository, "repo");
  static RankedMutex<std::mutex> proof(LockRank::kProofCache, "proof");
  {
    std::lock_guard outer(repo);
    std::lock_guard inner(proof);
    EXPECT_EQ(lock_rank::held_count(), 2u);
  }
  EXPECT_EQ(lock_rank::held_count(), 0u);
  EXPECT_EQ(g_count, 0);
}

TEST_F(LockRankTest, DecreasingOrderIsAViolation) {
  static RankedMutex<std::mutex> repo(LockRank::kRepository, "repo");
  static RankedMutex<std::mutex> proof(LockRank::kProofCache, "proof");
  {
    std::lock_guard outer(proof);
    std::lock_guard inner(repo);  // 30 while holding 50
  }
  EXPECT_EQ(g_count, 1);
  EXPECT_EQ(g_last.acquiring, "repo");
  EXPECT_EQ(g_last.acquiring_rank, 30);
  EXPECT_EQ(g_last.held, "proof");
  EXPECT_EQ(g_last.held_rank, 50);
}

TEST_F(LockRankTest, SameRankPeersAlsoViolate) {
  static RankedMutex<std::mutex> a(LockRank::kConnection, "conn-a");
  static RankedMutex<std::mutex> b(LockRank::kConnection, "conn-b");
  {
    std::lock_guard outer(a);
    std::lock_guard inner(b);  // no defined order between peers
  }
  EXPECT_EQ(g_count, 1);
}

TEST_F(LockRankTest, SharedLocksFollowTheSameDiscipline) {
  static RankedMutex<std::shared_mutex> board(LockRank::kSwitchboard, "board");
  static RankedMutex<std::shared_mutex> sig(LockRank::kSignatureCache, "sig");
  {
    std::shared_lock reader(board);
    std::unique_lock writer(sig);
    EXPECT_EQ(lock_rank::held_count(), 2u);
  }
  EXPECT_EQ(g_count, 0);
  // Fresh instances for the violating order: re-using board/sig would put a
  // genuine A->B->A cycle on the same mutex pair into TSan's lock-order graph.
  static RankedMutex<std::shared_mutex> board2(LockRank::kSwitchboard, "board2");
  static RankedMutex<std::shared_mutex> sig2(LockRank::kSignatureCache, "sig2");
  {
    std::shared_lock reader(sig2);
    std::shared_lock lower(board2);  // shared acquisition checked too
  }
  EXPECT_EQ(g_count, 1);
}

TEST_F(LockRankTest, OutOfOrderReleaseUnwindsCorrectly) {
  static RankedMutex<std::mutex> low(LockRank::kSwitchboard, "low");
  static RankedMutex<std::mutex> high(LockRank::kGuardCache, "high");
  std::unique_lock first(low);
  std::unique_lock second(high);
  first.unlock();  // release the *lower* lock first
  EXPECT_EQ(lock_rank::held_count(), 1u);
  // Re-acquiring something above the still-held high rank is fine...
  static RankedMutex<std::mutex> top(LockRank::kProofCache, "top");
  {
    std::lock_guard third(top);
  }
  EXPECT_EQ(g_count, 0);
  second.unlock();
  EXPECT_EQ(lock_rank::held_count(), 0u);
}

TEST_F(LockRankTest, TryLockRecordsButNeverTrips) {
  static RankedMutex<std::mutex> high(LockRank::kProofCache, "high");
  static RankedMutex<std::mutex> low(LockRank::kSwitchboard, "low");
  std::lock_guard outer(high);
  ASSERT_TRUE(low.try_lock());  // would violate as lock(); allowed as try
  EXPECT_EQ(g_count, 0);
  EXPECT_EQ(lock_rank::held_count(), 2u);
  low.unlock();
}

TEST_F(LockRankTest, HeldStacksAreSeparatePerThread) {
  static RankedMutex<std::mutex> repo(LockRank::kRepository, "repo");
  static RankedMutex<std::mutex> board(LockRank::kSwitchboard, "board");
  std::lock_guard outer(repo);
  int other_thread_count = -1;
  std::thread([&] {
    // This thread holds nothing, so a low-rank acquisition is fine even
    // while the main thread holds rank 30.
    std::lock_guard inner(board);
    other_thread_count = g_count;
  }).join();
  EXPECT_EQ(other_thread_count, 0);
}

}  // namespace
}  // namespace psf::util
