// Whole-deployment analysis (DESIGN.md §4l): reachability over the Table 4
// role→view matrices and the live dRBAC repository (PSA080), matrix gaps
// (PSA081), first-match shadowing (PSA082), default-view exposure inversion
// (PSA083), per-call-site monomorphism facts, the deployment-v1 JSON report,
// and VIG's generation-time inline-cache seeding from those facts.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/deployment.hpp"
#include "drbac/credential.hpp"
#include "drbac/repository.hpp"
#include "mail/components.hpp"
#include "minilang/interp.hpp"
#include "minilang/optimize.hpp"
#include "util/rng.hpp"
#include "views/vig.hpp"

namespace psf {
namespace {

using analysis::AccessRule;
using analysis::CallSiteFact;
using analysis::DeployedView;
using analysis::DeploymentInput;
using analysis::DeploymentResult;
using analysis::Diagnostic;
using analysis::ServiceMatrix;
using minilang::Value;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string fixture(const std::string& name) {
  return read_file(std::string(PSF_DEPLOYMENT_FIXTURE_DIR) + "/" + name);
}

views::ViewDefinition parse_view(const std::string& xml) {
  auto def = views::ViewDefinition::from_xml(xml);
  EXPECT_TRUE(def.ok()) << (def.ok() ? "" : def.error().message);
  return def.value();
}

std::set<std::string> codes_of(const DeploymentResult& result) {
  std::set<std::string> codes;
  for (const Diagnostic& d : result.diagnostics) codes.insert(d.code);
  return codes;
}

// The builtin mail deployment as mail::build_scenario wires it: client
// views behind the "mail" matrix with the anonymous default, the server
// cache behind "mailbox", the replica pinned by the planner. Roles carry a
// fixed fingerprint; tests that need provability checks add a repository.
struct TestDeployment {
  minilang::ClassRegistry registry;
  drbac::Entity comp;
  DeploymentInput input;

  TestDeployment() : comp(make_comp()) {
    mail::register_all(registry);
    input.registry = &registry;
    input.views = {
        {parse_view(mail::view_xml_member()), false},
        {parse_view(mail::view_xml_partner()), false},
        {parse_view(mail::view_xml_anonymous()), false},
        {parse_view(mail::view_xml_mail_server_cache()), false},
        {parse_view(mail::view_xml_client_replica()), true},
    };
    ServiceMatrix mail_service;
    mail_service.service = "mail";
    mail_service.rules = {{role("Member"), "ViewMailClient_Member"},
                          {role("Partner"), "ViewMailClient_Partner"}};
    mail_service.default_view = "ViewMailClient_Anonymous";
    ServiceMatrix mailbox;
    mailbox.service = "mailbox";
    mailbox.rules = {{role("Member"), "ViewMailServer"}};
    input.services = {mail_service, mailbox};
  }

  drbac::RoleRef role(const std::string& name) const {
    return drbac::role_of(comp, name);
  }

 private:
  static drbac::Entity make_comp() {
    util::Rng rng(7);
    return drbac::Entity::create("Comp.NY", rng);
  }
};

// ----------------------------------------------------------- reachability

TEST(Deployment, CleanBuiltinDeploymentHasNoFindings) {
  TestDeployment d;
  const DeploymentResult result = analysis::analyze_deployment(d.input);
  EXPECT_TRUE(result.diagnostics.empty())
      << result.diagnostics.front().display();
  EXPECT_EQ(result.errors, 0u);
  for (const auto& reach : result.reachability) {
    EXPECT_TRUE(reach.reachable) << reach.view;
  }
}

TEST(Deployment, UnservedViewIsDead) {
  TestDeployment d;
  d.input.views.push_back({parse_view(fixture("dead_view.xml")), false});
  const DeploymentResult result = analysis::analyze_deployment(d.input);
  ASSERT_TRUE(codes_of(result).count("PSA080"));
  bool found = false;
  for (const auto& reach : result.reachability) {
    if (reach.view != "ViewMailClient_Dead") continue;
    found = true;
    EXPECT_FALSE(reach.reachable);
  }
  EXPECT_TRUE(found);
  // Warnings, not errors: a dead view wastes resources but serves nobody
  // anything they should not see.
  EXPECT_EQ(result.errors, 0u);
}

TEST(Deployment, PinnedViewIsNeverDead) {
  TestDeployment d;  // the replica has no matrix row, only the pin
  const DeploymentResult result = analysis::analyze_deployment(d.input);
  for (const auto& reach : result.reachability) {
    if (reach.view != "ViewMailClientReplica") continue;
    EXPECT_TRUE(reach.pinned);
    EXPECT_TRUE(reach.reachable);
  }
  EXPECT_FALSE(codes_of(result).count("PSA080"));
}

TEST(Deployment, RuleToUnknownViewIsMatrixGapError) {
  TestDeployment d;
  d.input.services[0].rules.push_back({d.role("Auditor"), "NoSuchView"});
  const DeploymentResult result = analysis::analyze_deployment(d.input);
  ASSERT_TRUE(codes_of(result).count("PSA081"));
  EXPECT_GE(result.errors, 1u);
  const Diagnostic* gap = nullptr;
  for (const auto& diag : result.diagnostics) {
    if (diag.code == "PSA081") gap = &diag;
  }
  ASSERT_NE(gap, nullptr);
  EXPECT_EQ(gap->severity, analysis::Severity::kError);
  EXPECT_NE(gap->message.find("NoSuchView"), std::string::npos);
}

TEST(Deployment, UnknownDefaultViewIsMatrixGapError) {
  TestDeployment d;
  d.input.services[0].default_view = "GhostView";
  const DeploymentResult result = analysis::analyze_deployment(d.input);
  EXPECT_TRUE(codes_of(result).count("PSA081"));
  EXPECT_GE(result.errors, 1u);
}

TEST(Deployment, DuplicateRoleRowIsShadowedGrant) {
  TestDeployment d;
  // Second Member row in the mail matrix: first match wins, so this row can
  // never be selected — and it must not make the partner view reachable.
  d.input.services[0].rules.push_back(
      {d.role("Member"), "ViewMailClient_Partner"});
  // Drop the original partner row so the shadowed row is its only mention.
  d.input.services[0].rules.erase(d.input.services[0].rules.begin() + 1);
  const DeploymentResult result = analysis::analyze_deployment(d.input);
  EXPECT_TRUE(codes_of(result).count("PSA082"));
  EXPECT_TRUE(codes_of(result).count("PSA080"));  // partner now dead
  for (const auto& reach : result.reachability) {
    if (reach.view == "ViewMailClient_Partner") {
      EXPECT_FALSE(reach.reachable);
    }
  }
}

TEST(Deployment, ShadowingIsPerService) {
  TestDeployment d;  // Member appears in both matrices already: no finding
  const DeploymentResult result = analysis::analyze_deployment(d.input);
  EXPECT_FALSE(codes_of(result).count("PSA082"));
}

// ------------------------------------------------- credential provability

TEST(Deployment, UnprovableRoleDoesNotServeItsView) {
  TestDeployment d;
  drbac::Repository repository;
  util::Rng rng(11);
  drbac::Entity alice = drbac::Entity::create("alice", rng);
  // Only Member is grounded; Partner has no delegation at all.
  repository.add(drbac::issue(d.comp, drbac::Principal::of_entity(alice),
                              d.role("Member"), {}, false, 0, 0,
                              repository.next_serial()));
  d.input.repository = &repository;
  const DeploymentResult result = analysis::analyze_deployment(d.input);
  EXPECT_TRUE(codes_of(result).count("PSA080"));
  for (const auto& reach : result.reachability) {
    if (reach.view == "ViewMailClient_Partner") {
      EXPECT_FALSE(reach.reachable);
    }
    if (reach.view == "ViewMailClient_Member") {
      EXPECT_TRUE(reach.reachable);
    }
  }
  // The per-view credential pass reports the dead ACL row too.
  bool psa070 = false;
  for (const auto& per_view : result.per_view) {
    for (const auto& diag : per_view.diagnostics) {
      psa070 = psa070 || diag.code == "PSA070";
    }
  }
  EXPECT_TRUE(psa070);
}

TEST(Deployment, RevokedGrantKillsReachability) {
  TestDeployment d;
  drbac::Repository repository;
  util::Rng rng(13);
  drbac::Entity bob = drbac::Entity::create("bob", rng);
  const std::uint64_t serial = repository.next_serial();
  repository.add(drbac::issue(d.comp, drbac::Principal::of_entity(bob),
                              d.role("Member"), {}, false, 0, 0, serial));
  repository.revoke(serial);
  d.input.repository = &repository;
  const DeploymentResult result = analysis::analyze_deployment(d.input);
  for (const auto& reach : result.reachability) {
    if (reach.view == "ViewMailClient_Member") {
      EXPECT_FALSE(reach.reachable);
    }
  }
}

// ------------------------------------------------------ exposure inversion

TEST(Deployment, DefaultServingRemovedMemberIsInversion) {
  TestDeployment d;
  d.input.views.push_back({parse_view(fixture("remove_leak.xml")), false});
  d.input.services[0].rules.push_back(
      {d.role("Auditor"), "ViewMailClient_RemoveLeak"});
  const DeploymentResult result = analysis::analyze_deployment(d.input);
  ASSERT_TRUE(codes_of(result).count("PSA083"));
  const Diagnostic* inversion = nullptr;
  for (const auto& diag : result.diagnostics) {
    if (diag.code == "PSA083") inversion = &diag;
  }
  ASSERT_NE(inversion, nullptr);
  EXPECT_EQ(inversion->span.view, "ViewMailClient_Anonymous");
  EXPECT_EQ(inversion->span.where, "method getPhone");
}

TEST(Deployment, StrongerDefaultBindingIsInversion) {
  TestDeployment d;
  // Invert the bindings: a service whose *default* serves AddressI locally
  // while the role-gated view only gets the switchboard stub.
  ServiceMatrix inverted;
  inverted.service = "inverted";
  inverted.rules = {{d.role("Member"), "ViewMailClient_Anonymous"}};
  inverted.default_view = "ViewMailClient_Member";  // AddressI local
  d.input.services.push_back(inverted);
  const DeploymentResult result = analysis::analyze_deployment(d.input);
  bool binding_inversion = false;
  for (const auto& diag : result.diagnostics) {
    binding_inversion =
        binding_inversion ||
        (diag.code == "PSA083" &&
         diag.message.find("stronger binding") != std::string::npos);
  }
  EXPECT_TRUE(binding_inversion);
}

TEST(Deployment, NarrowerGatedViewIsNotInversion) {
  TestDeployment d;
  // The anonymous default exposes only AddressI via switchboard; the member
  // view exposes strictly more — no finding in the builtin wiring.
  const DeploymentResult result = analysis::analyze_deployment(d.input);
  EXPECT_FALSE(codes_of(result).count("PSA083"));
}

// ------------------------------------------------------ monomorphism facts

TEST(Deployment, MemberCallOnUniqueDeclarerIsMonomorphic) {
  TestDeployment d;
  d.input.views.push_back({parse_view(fixture("dead_view.xml")), false});
  const DeploymentResult result = analysis::analyze_deployment(d.input);
  const CallSiteFact* fact = nullptr;
  for (const auto& site : result.call_sites) {
    if (site.member == "addAccount") fact = &site;
  }
  ASSERT_NE(fact, nullptr);
  EXPECT_TRUE(fact->monomorphic);
  EXPECT_EQ(fact->receiver_class, "MailClient");
  EXPECT_EQ(fact->view, "ViewMailClient_Dead");
  EXPECT_EQ(fact->method, "relayAccount");
}

TEST(Deployment, SharedMemberNameIsPolymorphic) {
  TestDeployment d;
  // getPhone resolves on MailClient, MailServer, and several view models —
  // any site calling it must not be treated as monomorphic.
  d.input.views.push_back({parse_view(R"(
      <View name="ViewPhoneProbe">
        <Represents name="MailClient"/>
        <Restricts><Interface name="AddressI" type="switchboard"/></Restricts>
        <Adds_Methods>
          <MSign>constructor()</MSign>
          <MBody><![CDATA[return null;]]></MBody>
          <MSign>probe(target, name)</MSign>
          <MBody><![CDATA[return target.getPhone(name);]]></MBody>
        </Adds_Methods>
      </View>)"),
                           false});
  const DeploymentResult result = analysis::analyze_deployment(d.input);
  const CallSiteFact* fact = nullptr;
  for (const auto& site : result.call_sites) {
    if (site.view == "ViewPhoneProbe" && site.member == "getPhone") {
      fact = &site;
    }
  }
  ASSERT_NE(fact, nullptr);
  EXPECT_FALSE(fact->monomorphic);
  EXPECT_EQ(fact->receiver_class, "");
}

// ---------------------------------------------------------------- reports

TEST(Deployment, JsonIsStableAndSchemaTagged) {
  TestDeployment d;
  d.input.views.push_back({parse_view(fixture("dead_view.xml")), false});
  const std::string first = analysis::analyze_deployment(d.input).json();
  const std::string second = analysis::analyze_deployment(d.input).json();
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.rfind("{\"schema\":\"deployment-v1\"", 0), 0u);
  EXPECT_NE(first.find("\"dead_views\":[\"ViewMailClient_Dead\"]"),
            std::string::npos);
  EXPECT_NE(first.find("\"call_sites\":["), std::string::npos);
}

TEST(Deployment, DiagnosticsSortedByStableKey) {
  TestDeployment d;
  d.input.views.push_back({parse_view(fixture("dead_view.xml")), false});
  d.input.views.push_back({parse_view(fixture("remove_leak.xml")), false});
  d.input.services[0].rules.push_back(
      {d.role("Auditor"), "ViewMailClient_RemoveLeak"});
  d.input.services[0].rules.push_back({d.role("Auditor"), "NoSuchView"});
  const DeploymentResult result = analysis::analyze_deployment(d.input);
  ASSERT_GE(result.diagnostics.size(), 3u);
  for (std::size_t i = 1; i < result.diagnostics.size(); ++i) {
    const Diagnostic& a = result.diagnostics[i - 1];
    const Diagnostic& b = result.diagnostics[i];
    EXPECT_LE(std::tie(a.code, a.span.view, a.span.where, a.span.line),
              std::tie(b.code, b.span.view, b.span.where, b.span.line));
  }
}

// ------------------------------------------------- VIG inline-cache seeding

TEST(Deployment, VigSeedsInlineCachesFromFacts) {
  if (minilang::default_exec_mode() != minilang::ExecMode::kBytecode) {
    GTEST_SKIP() << "PSF_MINILANG_EXEC=interp disables generation-time "
                    "compilation";
  }
  if (!minilang::optimize_enabled()) {
    GTEST_SKIP() << "PSF_MINILANG_OPT=0 allocates no inline-cache slots, "
                    "so there is nothing to seed";
  }
  TestDeployment d;
  d.input.views.push_back({parse_view(fixture("dead_view.xml")), false});
  const DeploymentResult analysis_result =
      analysis::analyze_deployment(d.input);

  minilang::ClassRegistry registry;
  mail::register_all(registry);
  views::VigOptions options;
  options.deployment_facts = &analysis_result.call_sites;
  options.strip = false;  // relayAccount is interface-dead; keep the site
  views::Vig seeded_vig(&registry, options);
  auto cls = seeded_vig.generate(parse_view(fixture("dead_view.xml")));
  ASSERT_TRUE(cls.ok()) << cls.error().message;
  EXPECT_GE(seeded_vig.stats().caches_seeded, 1u);

  // A seeded cache must behave exactly like a cold one: the right receiver
  // hits, everything else falls back to the named slow path.
  auto view = minilang::instantiate(registry, cls.value()->name);
  auto client = minilang::instantiate(registry, "MailClient");
  minilang::InterpOptions bytecode;
  bytecode.exec = minilang::ExecMode::kBytecode;
  const Value ok = minilang::invoke_method(
      view, "relayAccount",
      {Value::object(client), Value::string("dana"), Value::string("555"),
       Value::string("dana@x")},
      /*external=*/true, bytecode);
  EXPECT_TRUE(ok.is_null());
  EXPECT_EQ(minilang::invoke_method(client, "getPhone",
                                    {Value::string("dana")},
                                    /*external=*/true, bytecode)
                .to_display_string(),
            "555");

  // Guard miss: a receiver of a different class (MailServer has no
  // addAccount) gets the same error the interpreter raises.
  auto server = minilang::instantiate(registry, "MailServer");
  std::string bytecode_error, interp_error;
  try {
    minilang::invoke_method(view, "relayAccount",
                            {Value::object(server), Value::string("x"),
                             Value::string("y"), Value::string("z")},
                            /*external=*/true, bytecode);
  } catch (const minilang::EvalError& e) {
    bytecode_error = e.what();
  }
  minilang::InterpOptions interp;
  interp.exec = minilang::ExecMode::kInterp;
  try {
    minilang::invoke_method(view, "relayAccount",
                            {Value::object(server), Value::string("x"),
                             Value::string("y"), Value::string("z")},
                            /*external=*/true, interp);
  } catch (const minilang::EvalError& e) {
    interp_error = e.what();
  }
  EXPECT_FALSE(bytecode_error.empty());
  EXPECT_EQ(bytecode_error, interp_error);
}

TEST(Deployment, SeedingRefusesFactsTheClassCannotBack) {
  if (minilang::default_exec_mode() != minilang::ExecMode::kBytecode) {
    GTEST_SKIP() << "PSF_MINILANG_EXEC=interp disables generation-time "
                    "compilation";
  }
  minilang::ClassRegistry registry;
  mail::register_all(registry);
  // A wrong fact: claims the addAccount site resolves on MailServer, which
  // has no such method. Seeding must refuse (and dispatch still works).
  std::vector<CallSiteFact> facts{{"ViewMailClient_Dead", "relayAccount",
                                   "addAccount", 1, true, "MailServer"}};
  views::VigOptions options;
  options.deployment_facts = &facts;
  options.strip = false;
  views::Vig vig(&registry, options);
  auto cls = vig.generate(parse_view(fixture("dead_view.xml")));
  ASSERT_TRUE(cls.ok()) << cls.error().message;
  EXPECT_EQ(vig.stats().caches_seeded, 0u);

  auto view = minilang::instantiate(registry, cls.value()->name);
  auto client = minilang::instantiate(registry, "MailClient");
  minilang::InterpOptions bytecode;
  bytecode.exec = minilang::ExecMode::kBytecode;
  const Value ok = minilang::invoke_method(
      view, "relayAccount",
      {Value::object(client), Value::string("eve"), Value::string("111"),
       Value::string("eve@x")},
      /*external=*/true, bytecode);
  EXPECT_TRUE(ok.is_null());
}

TEST(Deployment, RoleProvableFollowsDelegationChains) {
  util::Rng rng(17);
  drbac::Entity comp = drbac::Entity::create("Comp.NY", rng);
  drbac::Entity branch = drbac::Entity::create("Comp.SD", rng);
  drbac::Entity carol = drbac::Entity::create("carol", rng);
  drbac::Repository repository;
  // Comp.SD.Member -> Comp.NY.Member (role-to-role), carol -> Comp.SD.Member.
  repository.add(drbac::issue(
      comp, drbac::Principal::of_role(branch, "Member"),
      drbac::role_of(comp, "Member"), {}, false, 0, 0,
      repository.next_serial()));
  EXPECT_FALSE(analysis::role_provable(repository,
                                       drbac::role_of(comp, "Member")))
      << "role-to-role chain with no grounded subject";
  repository.add(drbac::issue(branch, drbac::Principal::of_entity(carol),
                              drbac::role_of(branch, "Member"), {}, false, 0,
                              0, repository.next_serial()));
  EXPECT_TRUE(analysis::role_provable(repository,
                                      drbac::role_of(comp, "Member")));
}

}  // namespace
}  // namespace psf
