// Fast-path cache correctness (ISSUE 2 satellite): SignatureCache hit
// behavior, ProofCache epoch invalidation across add/revoke/merge, the
// parallel-verify determinism guarantee, and the "a revoked or expired
// delegation is never served from any cache" acceptance criterion.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "drbac/credential.hpp"
#include "drbac/engine.hpp"
#include "drbac/entity.hpp"
#include "drbac/proof_cache.hpp"
#include "drbac/repository.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "util/sim_clock.hpp"

namespace psf::drbac {
namespace {

using util::SimTime;
using util::kSecond;

std::uint64_t counter(const char* name) {
  return obs::counter(name).value();
}

// Start every test from empty caches: the SignatureCache is process-wide,
// so leftovers from a previous test would hide misses.
void reset_caches(const Repository& repo) {
  SignatureCache::instance().clear();
  repo.proof_cache().clear();
}

ProveOptions uncached_options() {
  ProveOptions options;
  options.use_proof_cache = false;
  options.use_signature_cache = false;
  options.parallel_verify = false;
  return options;
}

// A `depth`-hop delegation chain user -> G0.r -> ... -> G(depth-1).r.
// `issue_last` false withholds the final link (for the merge test).
struct ChainWorld {
  util::Rng rng{7};
  Repository repo;
  Entity user{Entity::create("user", rng)};
  std::vector<Entity> guards;
  std::vector<DelegationPtr> links;
  RoleRef goal;

  explicit ChainWorld(int depth, SimTime expires_at = 0) {
    for (int i = 0; i < depth; ++i) {
      guards.push_back(Entity::create("G" + std::to_string(i), rng));
    }
    links.push_back(issue(guards[0], Principal::of_entity(user),
                          role_of(guards[0], "r"), {}, false, 0, expires_at,
                          repo.next_serial()));
    repo.add(links.back());
    for (int i = 0; i + 1 < depth; ++i) {
      links.push_back(issue(guards[i + 1], Principal::of_role(guards[i], "r"),
                            role_of(guards[i + 1], "r"), {}, false, 0,
                            expires_at, repo.next_serial()));
      repo.add(links.back());
    }
    goal = role_of(guards[depth - 1], "r");
  }

  Principal subject() const { return Principal::of_entity(user); }
};

std::vector<std::uint64_t> serials(const Proof& proof) {
  std::vector<std::uint64_t> out;
  for (const auto& c : proof.credentials) out.push_back(c->serial);
  return out;
}

// ------------------------------------------------------- SignatureCache

TEST(SignatureCache, HitAfterFirstVerify) {
  ChainWorld world(1);
  reset_caches(world.repo);
  const Delegation& cred = *world.links[0];

  EXPECT_FALSE(SignatureCache::instance().contains(cred));
  const std::uint64_t misses0 = counter("psf.drbac.sigcache.misses");
  const std::uint64_t hits0 = counter("psf.drbac.sigcache.hits");

  EXPECT_TRUE(verify_cached(cred));  // miss: runs the Schnorr verify
  EXPECT_TRUE(SignatureCache::instance().contains(cred));
  EXPECT_EQ(counter("psf.drbac.sigcache.misses"), misses0 + 1);

  EXPECT_TRUE(verify_cached(cred));  // hit: no crypto
  EXPECT_TRUE(verify_cached(cred));
  EXPECT_EQ(counter("psf.drbac.sigcache.hits"), hits0 + 2);
  EXPECT_EQ(counter("psf.drbac.sigcache.misses"), misses0 + 1);
}

TEST(SignatureCache, TamperedCopyMissesAndFails) {
  ChainWorld world(1);
  reset_caches(world.repo);
  const Delegation& cred = *world.links[0];
  ASSERT_TRUE(verify_cached(cred));

  // A tampered copy has a different content hash: it cannot ride the
  // original's cached verdict, and its own verify fails.
  Delegation tampered = cred;
  tampered.serial += 1;
  EXPECT_NE(tampered.content_hash(), cred.content_hash());
  EXPECT_FALSE(SignatureCache::instance().contains(tampered));
  EXPECT_FALSE(verify_cached(tampered));
  // The bad verdict is cached too (pure fact) without touching the good one.
  EXPECT_FALSE(verify_cached(tampered));
  EXPECT_TRUE(verify_cached(cred));
}

TEST(SignatureCache, InvalidateDropsOnlyThatEntry) {
  ChainWorld world(2);
  reset_caches(world.repo);
  ASSERT_TRUE(verify_cached(*world.links[0]));
  ASSERT_TRUE(verify_cached(*world.links[1]));
  EXPECT_EQ(SignatureCache::instance().size(), 2u);

  SignatureCache::instance().invalidate(*world.links[0]);
  EXPECT_FALSE(SignatureCache::instance().contains(*world.links[0]));
  EXPECT_TRUE(SignatureCache::instance().contains(*world.links[1]));
  EXPECT_EQ(SignatureCache::instance().size(), 1u);
}

// ----------------------------------------------------------- ProofCache

TEST(ProofCache, WarmHitReturnsIdenticalProof) {
  ChainWorld world(4);
  reset_caches(world.repo);
  Engine engine(&world.repo);

  const std::uint64_t hits0 = counter("psf.drbac.proofcache.hits");
  auto cold = engine.prove(world.subject(), world.goal, 0);
  ASSERT_TRUE(cold.ok());
  EXPECT_GE(world.repo.proof_cache().size(), 1u);

  auto warm = engine.prove(world.subject(), world.goal, 0);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(counter("psf.drbac.proofcache.hits"), hits0 + 1);
  EXPECT_EQ(serials(warm.value()), serials(cold.value()));
  EXPECT_EQ(attributes_to_string(warm.value().effective_attributes),
            attributes_to_string(cold.value().effective_attributes));
}

TEST(ProofCache, EpochBumpsOnAddRevokeAndMerge) {
  ChainWorld world(2);
  const std::uint64_t e0 = world.repo.epoch();

  world.repo.add(issue(world.guards[0], Principal::of_entity(world.user),
                       role_of(world.guards[0], "other"), {}, false, 0, 0,
                       world.repo.next_serial()));
  EXPECT_GT(world.repo.epoch(), e0);

  const std::uint64_t e1 = world.repo.epoch();
  world.repo.revoke(world.links[1]->serial);
  EXPECT_GT(world.repo.epoch(), e1);

  // Re-revoking the same serial is not an effective mutation.
  const std::uint64_t e2 = world.repo.epoch();
  world.repo.revoke(world.links[1]->serial);
  EXPECT_EQ(world.repo.epoch(), e2);
}

TEST(ProofCache, RevokedDelegationNeverServedFromCache) {
  ChainWorld world(4);
  reset_caches(world.repo);
  Engine engine(&world.repo);

  // Warm every cache layer, then hit once to prove the fast path is live.
  auto proof = engine.prove(world.subject(), world.goal, 0);
  ASSERT_TRUE(proof.ok());
  ASSERT_TRUE(engine.prove(world.subject(), world.goal, 0).ok());
  ASSERT_TRUE(SignatureCache::instance().contains(*world.links[2]));

  // Revoke a mid-chain link: epoch bump kills the ProofCache entry and the
  // SignatureCache entry is evicted.
  world.repo.revoke(world.links[2]->serial);
  EXPECT_FALSE(SignatureCache::instance().contains(*world.links[2]));

  auto after = engine.prove(world.subject(), world.goal, 0);
  EXPECT_FALSE(after.ok());
  // The old proof object must also stop validating (continuous auth).
  EXPECT_FALSE(engine.validate(proof.value(), 0));
  // And the failure is itself cached + re-served without resurrecting it.
  EXPECT_FALSE(engine.prove(world.subject(), world.goal, 0).ok());
}

TEST(ProofCache, MergeRefreshesCachedDeadEnd) {
  // Withhold the last link, let the engine cache the dead end, then merge a
  // snapshot supplying it: the epoch bump must invalidate the negative
  // entry so the proof goes through.
  ChainWorld world(3);
  reset_caches(world.repo);
  Engine engine(&world.repo);
  Entity last = Entity::create("last", world.rng);
  const RoleRef goal = role_of(last, "r");

  EXPECT_FALSE(engine.prove(world.subject(), goal, 0).ok());
  EXPECT_GE(world.repo.proof_cache().size(), 1u);  // negative entry

  Repository other;
  other.add(issue(last, Principal::of_role(world.guards[2], "r"), goal, {},
                  false, 0, 0, 777));
  const std::uint64_t epoch_before = world.repo.epoch();
  auto merged = world.repo.merge_snapshot(other.snapshot());
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().added, 1u);
  EXPECT_GT(world.repo.epoch(), epoch_before);

  auto proof = engine.prove(world.subject(), goal, 0);
  ASSERT_TRUE(proof.ok());
  EXPECT_EQ(proof.value().credentials.size(), 4u);
}

TEST(ProofCache, NoStaleProofAfterExpiryUnderSimClock) {
  util::SimClock clock;
  ChainWorld world(3, /*expires_at=*/10 * kSecond);
  reset_caches(world.repo);
  Engine engine(&world.repo);

  auto proof = engine.prove(world.subject(), world.goal, clock.now());
  ASSERT_TRUE(proof.ok());
  ASSERT_TRUE(engine.prove(world.subject(), world.goal, clock.now()).ok());

  // Advance past expiry: the cached fragment references expired
  // credentials, so the hit is refused and the live search fails too.
  clock.advance(20 * kSecond);
  const std::uint64_t expiries0 = counter("psf.drbac.proofcache.expiries");
  EXPECT_FALSE(engine.prove(world.subject(), world.goal, clock.now()).ok());
  EXPECT_EQ(counter("psf.drbac.proofcache.expiries"), expiries0 + 1);
  EXPECT_FALSE(engine.validate(proof.value(), clock.now()));
}

TEST(ProofCache, RequirementsRecheckedOnEveryHit) {
  // `required` is not part of the cache key; a cached success must still
  // fail a requirement the attenuated grant cannot satisfy.
  ChainWorld world(2);
  reset_caches(world.repo);
  Engine engine(&world.repo);

  ASSERT_TRUE(engine.prove(world.subject(), world.goal, 0).ok());

  ProveOptions demanding;
  demanding.required = {{"CPU", Attribute::make_range("CPU", 0, 10)}};
  EXPECT_FALSE(engine.prove(world.subject(), world.goal, 0, demanding).ok());
  // And the unconstrained proof still succeeds from the same entry.
  EXPECT_TRUE(engine.prove(world.subject(), world.goal, 0).ok());
}

// ------------------------------------------------- Parallel determinism

TEST(ParallelVerify, ProofsIdenticalToSerial) {
  ChainWorld world(8);
  Engine engine(&world.repo);

  reset_caches(world.repo);
  auto serial_proof =
      engine.prove(world.subject(), world.goal, 0, uncached_options());
  ASSERT_TRUE(serial_proof.ok());

  reset_caches(world.repo);
  ProveOptions parallel;  // defaults: all cache layers + parallel prewarm on
  const std::uint64_t jobs0 = counter("psf.drbac.parallel_verify.jobs");
  auto parallel_proof =
      engine.prove(world.subject(), world.goal, 0, parallel);
  ASSERT_TRUE(parallel_proof.ok());
  EXPECT_GT(counter("psf.drbac.parallel_verify.jobs"), jobs0);

  EXPECT_EQ(serials(parallel_proof.value()), serials(serial_proof.value()));
  EXPECT_EQ(attributes_to_string(parallel_proof.value().effective_attributes),
            attributes_to_string(serial_proof.value().effective_attributes));
  EXPECT_EQ(parallel_proof.value().support.size(),
            serial_proof.value().support.size());
}

}  // namespace
}  // namespace psf::drbac
