#include <gtest/gtest.h>

#include "mail/components.hpp"
#include "minilang/interp.hpp"
#include "minilang/parser.hpp"
#include "views/cache.hpp"
#include "views/codegen.hpp"
#include "views/view_def.hpp"
#include "views/vig.hpp"

namespace psf::views {
namespace {

using minilang::Binding;
using minilang::ClassRegistry;
using minilang::Instance;
using minilang::Value;

// --------------------------------------------------------- ViewDefinition

TEST(ViewDef, ParsesPartnerXml) {
  auto def = ViewDefinition::from_xml(mail::view_xml_partner());
  ASSERT_TRUE(def.ok()) << def.error().message;
  const ViewDefinition& v = def.value();
  EXPECT_EQ(v.name, "ViewMailClient_Partner");
  EXPECT_EQ(v.represents, "MailClient");
  ASSERT_EQ(v.interfaces.size(), 3u);
  EXPECT_EQ(v.interfaces[0].name, "MessageI");
  EXPECT_EQ(v.interfaces[0].binding, Binding::kLocal);
  EXPECT_EQ(v.interfaces[1].binding, Binding::kRmi);
  EXPECT_EQ(v.interfaces[2].binding, Binding::kSwitchboard);
  ASSERT_EQ(v.added_fields.size(), 1u);
  EXPECT_EQ(v.added_fields[0].name, "accountCopy");
  ASSERT_EQ(v.added_methods.size(), 1u);
  EXPECT_EQ(v.added_methods[0].name, "constructor");
  ASSERT_EQ(v.customized_methods.size(), 1u);
  EXPECT_EQ(v.customized_methods[0].name, "addMeeting");
}

TEST(ViewDef, SignatureParsing) {
  auto plain = MethodSpec::parse_signature("addMeeting(name)", "x");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain.value().name, "addMeeting");
  EXPECT_EQ(plain.value().params, std::vector<std::string>{"name"});

  // Java-style types and modifiers are tolerated.
  auto java = MethodSpec::parse_signature(
      "boolean addMeeting( String name )", "x");
  ASSERT_TRUE(java.ok());
  EXPECT_EQ(java.value().name, "addMeeting");
  EXPECT_EQ(java.value().params, std::vector<std::string>{"name"});

  auto multi = MethodSpec::parse_signature("void f(a, b, c)", "x");
  ASSERT_TRUE(multi.ok());
  EXPECT_EQ(multi.value().params.size(), 3u);

  EXPECT_FALSE(MethodSpec::parse_signature("noparens", "x").ok());
  EXPECT_FALSE(MethodSpec::parse_signature("f(a,)", "x").ok());
}

TEST(ViewDef, RejectsMissingRepresents) {
  auto def = ViewDefinition::from_xml("<View name=\"V\"/>");
  ASSERT_FALSE(def.ok());
  EXPECT_NE(def.error().message.find("Represents"), std::string::npos);
}

TEST(ViewDef, RejectsUnknownInterfaceType) {
  auto def = ViewDefinition::from_xml(R"(
    <View name="V"><Represents name="C"/>
      <Restricts><Interface name="I" type="telepathy"/></Restricts>
    </View>)");
  ASSERT_FALSE(def.ok());
  EXPECT_NE(def.error().message.find("telepathy"), std::string::npos);
}

TEST(ViewDef, RejectsDanglingMSign) {
  auto def = ViewDefinition::from_xml(R"(
    <View name="V"><Represents name="C"/>
      <Adds_Methods><MSign>f()</MSign></Adds_Methods>
    </View>)");
  EXPECT_FALSE(def.ok());
}

TEST(ViewDef, XmlRoundTrip) {
  auto def = ViewDefinition::from_xml(mail::view_xml_partner());
  ASSERT_TRUE(def.ok());
  auto again = ViewDefinition::from_xml(def.value().to_xml());
  ASSERT_TRUE(again.ok()) << again.error().message;
  EXPECT_EQ(again.value().name, def.value().name);
  EXPECT_EQ(again.value().interfaces.size(), def.value().interfaces.size());
  EXPECT_EQ(again.value().customized_methods[0].body,
            def.value().customized_methods[0].body);
}

// ----------------------------------------------------- free-name analysis

TEST(FreeNames, FindsUndeclaredVariablesAndCalls) {
  auto body = minilang::parse_block_source(
      "var x = 1; y = x + z; helper(x); push(lst, y);");
  ASSERT_TRUE(body.ok());
  const FreeNames free = collect_free_names(body.value(), {});
  EXPECT_EQ(free.variables, (std::vector<std::string>{"lst", "y", "z"}));
  EXPECT_EQ(free.calls, (std::vector<std::string>{"helper", "push"}));
}

TEST(FreeNames, ParamsAndThisAreNotFree) {
  auto body = minilang::parse_block_source("return this.f + a + b;");
  ASSERT_TRUE(body.ok());
  const FreeNames free = collect_free_names(body.value(), {"a", "b"});
  EXPECT_TRUE(free.variables.empty());
}

// -------------------------------------------------------------------- VIG

struct MailWorld {
  ClassRegistry registry;
  Vig vig{&registry};

  MailWorld() { mail::register_all(registry); }

  std::shared_ptr<minilang::ClassDef> must_generate(const std::string& xml) {
    auto def = ViewDefinition::from_xml(xml);
    EXPECT_TRUE(def.ok()) << def.error().message;
    auto cls = vig.generate(def.value());
    EXPECT_TRUE(cls.ok()) << cls.error().message;
    return cls.value();
  }
};

TEST(Vig, GeneratesMemberView) {
  MailWorld w;
  auto cls = w.must_generate(mail::view_xml_member());
  EXPECT_EQ(cls->name, "ViewMailClient_Member");
  EXPECT_EQ(cls->represents, "MailClient");
  EXPECT_TRUE(cls->is_view());
  // All three interfaces local.
  EXPECT_EQ(cls->interfaces.size(), 3u);
  // Copied public methods + transitively copied private helper.
  EXPECT_NE(cls->find_method("sendMessage"), nullptr);
  EXPECT_NE(cls->find_method("getPhone"), nullptr);
  const auto* helper = cls->find_method("findAccount");
  ASSERT_NE(helper, nullptr) << "findAccount must be copied transitively";
  EXPECT_EQ(helper->visibility, minilang::Visibility::kPrivate);
  // Fields used by copied methods are copied.
  EXPECT_NE(cls->find_field("accounts"), nullptr);
  EXPECT_NE(cls->find_field("inbox"), nullptr);
  // Coherence defaults were synthesized.
  EXPECT_NE(cls->find_method("extractImageFromView"), nullptr);
  EXPECT_NE(cls->find_method("mergeImageIntoObj"), nullptr);
  // cacheManager field injected.
  EXPECT_NE(cls->find_field("cacheManager"), nullptr);
}

TEST(Vig, GeneratesPartnerViewWithStubs) {
  MailWorld w;
  auto cls = w.must_generate(mail::view_xml_partner());
  // Local interface methods copied.
  EXPECT_NE(cls->find_method("sendMessage"), nullptr);
  EXPECT_FALSE(cls->find_method("sendMessage")->is_native);
  // Remote interfaces became stub methods with stub fields.
  EXPECT_NE(cls->find_field("notesI_rmi"), nullptr);
  EXPECT_NE(cls->find_field("addressI_switch"), nullptr);
  const auto* get_phone = cls->find_method("getPhone");
  ASSERT_NE(get_phone, nullptr);
  EXPECT_NE(get_phone->source.find("addressI_switch.getPhone"),
            std::string::npos);
  // addMeeting was customized, not a stub.
  const auto* add_meeting = cls->find_method("addMeeting");
  ASSERT_NE(add_meeting, nullptr);
  EXPECT_NE(add_meeting->source.find("meeting-request"), std::string::npos);
  // Added field present.
  EXPECT_NE(cls->find_field("accountCopy"), nullptr);
  // The private helper is NOT copied (no local method references it).
  EXPECT_EQ(cls->find_method("findAccount"), nullptr);
  // accounts field not copied either: only stubs touch the address book.
  EXPECT_EQ(cls->find_field("accounts"), nullptr);
}

TEST(Vig, ViewMethodsAreCoherenceWrapped) {
  MailWorld w;
  auto cls = w.must_generate(mail::view_xml_partner());
  EXPECT_TRUE(cls->find_method("sendMessage")->coherence_wrapped);
  EXPECT_TRUE(cls->find_method("addMeeting")->coherence_wrapped);
  // Constructor and coherence methods are not wrapped.
  EXPECT_FALSE(cls->find_method("constructor")->coherence_wrapped);
  EXPECT_FALSE(cls->find_method("extractImageFromView")->coherence_wrapped);
}

TEST(Vig, CachesGeneratedViews) {
  MailWorld w;
  auto def = ViewDefinition::from_xml(mail::view_xml_member());
  ASSERT_TRUE(def.ok());
  auto first = w.vig.generate(def.value());
  ASSERT_TRUE(first.ok());
  auto second = w.vig.generate(def.value());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().get(), second.value().get());
  EXPECT_EQ(w.vig.stats().generated, 1u);
  EXPECT_EQ(w.vig.stats().cache_hits, 1u);
}

TEST(Vig, UnknownRepresentedClassDiagnosed) {
  MailWorld w;
  auto def = ViewDefinition::from_xml(R"(
    <View name="V"><Represents name="NoSuchClass"/>
      <Adds_Methods><MSign>constructor()</MSign><MBody>return null;</MBody></Adds_Methods>
    </View>)");
  ASSERT_TRUE(def.ok());
  auto cls = w.vig.generate(def.value());
  ASSERT_FALSE(cls.ok());
  ASSERT_EQ(w.vig.diagnostics().size(), 1u);
  EXPECT_NE(w.vig.diagnostics()[0].hint.find("Represents"), std::string::npos);
}

TEST(Vig, UnknownInterfaceDiagnosed) {
  MailWorld w;
  auto def = ViewDefinition::from_xml(R"(
    <View name="V"><Represents name="MailClient"/>
      <Restricts><Interface name="GhostI" type="local"/></Restricts>
      <Adds_Methods><MSign>constructor()</MSign><MBody>return null;</MBody></Adds_Methods>
    </View>)");
  ASSERT_TRUE(def.ok());
  auto cls = w.vig.generate(def.value());
  ASSERT_FALSE(cls.ok());
  EXPECT_NE(cls.error().message.find("GhostI"), std::string::npos);
}

TEST(Vig, InterfaceNotImplementedByRepresentedDiagnosed) {
  MailWorld w;
  // MailServer does not implement NotesI.
  auto def = ViewDefinition::from_xml(R"(
    <View name="V"><Represents name="MailServer"/>
      <Restricts><Interface name="NotesI" type="local"/></Restricts>
      <Adds_Methods><MSign>constructor()</MSign><MBody>return null;</MBody></Adds_Methods>
    </View>)");
  ASSERT_TRUE(def.ok());
  auto cls = w.vig.generate(def.value());
  ASSERT_FALSE(cls.ok());
  EXPECT_NE(cls.error().message.find("does not implement"), std::string::npos);
}

TEST(Vig, UndefinedVariableDiagnosedWithHint) {
  // Paper §4.3: "if VIG is unable to generate correct bytecode (e.g. a new
  // method uses a variable that is not defined in the original object or the
  // method), it triggers an error that indicates how the XML rules can be
  // rectified".
  MailWorld w;
  auto def = ViewDefinition::from_xml(R"(
    <View name="V"><Represents name="MailClient"/>
      <Adds_Methods>
        <MSign>constructor()</MSign><MBody>return null;</MBody>
        <MSign>bad()</MSign><MBody>return undefinedThing + 1;</MBody>
      </Adds_Methods>
    </View>)");
  ASSERT_TRUE(def.ok());
  auto cls = w.vig.generate(def.value());
  ASSERT_FALSE(cls.ok());
  bool found = false;
  for (const auto& d : w.vig.diagnostics()) {
    if (d.message.find("undefinedThing") != std::string::npos &&
        d.message.find("not defined in the original object or the method") !=
            std::string::npos &&
        !d.hint.empty()) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Vig, UnknownMethodCallDiagnosed) {
  MailWorld w;
  auto def = ViewDefinition::from_xml(R"(
    <View name="V"><Represents name="MailClient"/>
      <Adds_Methods>
        <MSign>constructor()</MSign><MBody>return null;</MBody>
        <MSign>bad()</MSign><MBody>return frobnicate(1);</MBody>
      </Adds_Methods>
    </View>)");
  ASSERT_TRUE(def.ok());
  auto cls = w.vig.generate(def.value());
  ASSERT_FALSE(cls.ok());
  EXPECT_NE(cls.error().message.find("frobnicate"), std::string::npos);
}

TEST(Vig, MissingConstructorDiagnosed) {
  MailWorld w;
  auto def = ViewDefinition::from_xml(R"(
    <View name="V"><Represents name="MailClient"/></View>)");
  ASSERT_TRUE(def.ok());
  auto cls = w.vig.generate(def.value());
  ASSERT_FALSE(cls.ok());
  EXPECT_NE(cls.error().message.find("constructor"), std::string::npos);
}

TEST(Vig, CustomizingNonexistentMethodDiagnosed) {
  MailWorld w;
  auto def = ViewDefinition::from_xml(R"(
    <View name="V"><Represents name="MailClient"/>
      <Adds_Methods><MSign>constructor()</MSign><MBody>return null;</MBody></Adds_Methods>
      <Customizes_Methods><MSign>noSuch()</MSign><MBody>return null;</MBody></Customizes_Methods>
    </View>)");
  ASSERT_TRUE(def.ok());
  auto cls = w.vig.generate(def.value());
  ASSERT_FALSE(cls.ok());
  EXPECT_NE(cls.error().message.find("Adds_Methods"), std::string::npos);
}

TEST(Vig, BodyParseErrorDiagnosed) {
  MailWorld w;
  auto def = ViewDefinition::from_xml(R"(
    <View name="V"><Represents name="MailClient"/>
      <Adds_Methods><MSign>constructor()</MSign><MBody>var = broken</MBody></Adds_Methods>
    </View>)");
  ASSERT_TRUE(def.ok());
  auto cls = w.vig.generate(def.value());
  ASSERT_FALSE(cls.ok());
  EXPECT_NE(cls.error().message.find("does not parse"), std::string::npos);
}

TEST(Vig, MissingCoherenceWithoutAutoDiagnosed) {
  ClassRegistry registry;
  mail::register_all(registry);
  VigOptions opts;
  opts.auto_coherence = false;
  Vig vig(&registry, opts);
  auto def = ViewDefinition::from_xml(mail::view_xml_member());
  ASSERT_TRUE(def.ok());
  auto cls = vig.generate(def.value());
  ASSERT_FALSE(cls.ok());
  EXPECT_NE(cls.error().message.find("extractImageFromView"),
            std::string::npos);
  EXPECT_NE(cls.error().message.find("auto_coherence"), std::string::npos);
}

// ------------------------------------------------------- runtime behaviour

TEST(ViewRuntime, MemberViewWorksStandalone) {
  MailWorld w;
  w.must_generate(mail::view_xml_member());
  auto view = minilang::instantiate(w.registry, "ViewMailClient_Member");
  // addAccount is NOT part of any restricted interface, so the view does not
  // expose it — fine-grained access control by construction (paper §4.2).
  EXPECT_THROW(view->call("addAccount",
                          {Value::string("alice"), Value::string("x"),
                           Value::string("y")}),
               minilang::EvalError);
  // The interface methods work on the view's own state.
  view->call("addNote", {Value::string("remember the milk")});
  view->call("sendMessage", {mail::make_message("a", "b", "s", "t")});
  EXPECT_EQ(view->get_field("notes").as_list()->size(), 1u);
  EXPECT_EQ(view->get_field("outbox").as_list()->size(), 1u);
}

TEST(ViewRuntime, PartnerViewRoutesRemoteInterfacesToOriginal) {
  MailWorld w;
  w.must_generate(mail::view_xml_partner());

  // The original object, with an account registered.
  auto original = minilang::instantiate(w.registry, "MailClient");
  original->call("addAccount",
                 {Value::string("alice"), Value::string("555-0100"),
                  Value::string("alice@comp.ny")});

  auto view = minilang::instantiate(w.registry, "ViewMailClient_Partner");
  // Deployment wiring: stub fields point at the original object.
  view->set_field("notesI_rmi", Value::object(original));
  view->set_field("addressI_switch", Value::object(original));
  attach_cache_manager(view, Value::object(original));

  // switchboard-bound AddressI: answered by the original.
  EXPECT_EQ(view->call("getPhone", {Value::string("alice")}).as_string(),
            "555-0100");
  EXPECT_EQ(view->call("getEmail", {Value::string("alice")}).as_string(),
            "alice@comp.ny");

  // rmi-bound NotesI: addNote lands on the original.
  view->call("addNote", {Value::string("from the view")});
  EXPECT_EQ(original->get_field("notes").as_list()->size(), 1u);

  // Customized addMeeting: request-only, returns false, routed as a note.
  EXPECT_FALSE(view->call("addMeeting", {Value::string("bob")}).as_bool());
  EXPECT_EQ(original->get_field("notes").as_list()->size(), 2u);
  EXPECT_EQ(original->get_field("meetings").as_list()->size(), 0u);
}

TEST(ViewRuntime, CoherencePullsAndPushesImages) {
  MailWorld w;
  w.must_generate(mail::view_xml_partner());
  auto original = minilang::instantiate(w.registry, "MailClient");
  auto view = minilang::instantiate(w.registry, "ViewMailClient_Partner");
  view->set_field("notesI_rmi", Value::object(original));
  view->set_field("addressI_switch", Value::object(original));
  auto cache = attach_cache_manager(view, Value::object(original));

  // Deliver two messages to the ORIGINAL; read them through the VIEW.
  original->call("deliver", {mail::make_message("bob", "alice", "s1", "b1")});
  original->call("deliver", {mail::make_message("eve", "alice", "s2", "b2")});
  const Value received = view->call("receiveMessages", {});
  ASSERT_TRUE(received.is_list());
  EXPECT_EQ(received.as_list()->size(), 2u);

  // The drain is written back: the original's inbox is now empty.
  EXPECT_EQ(original->get_field("inbox").as_list()->size(), 0u);

  // Send through the view: the release hook pushes outbox to the original.
  view->call("sendMessage", {mail::make_message("alice", "bob", "s", "b")});
  EXPECT_EQ(original->get_field("outbox").as_list()->size(), 1u);

  EXPECT_GT(cache->stats().pulls, 0u);
  EXPECT_GT(cache->stats().pushes, 0u);
}

TEST(ViewRuntime, CachePolicyNoneDoesNoTraffic) {
  MailWorld w;
  w.must_generate(mail::view_xml_partner());
  auto original = minilang::instantiate(w.registry, "MailClient");
  auto view = minilang::instantiate(w.registry, "ViewMailClient_Partner");
  auto cache = attach_cache_manager(view, Value::object(original),
                                    CacheManager::Policy::kNone);
  original->call("deliver", {mail::make_message("b", "a", "s", "t")});
  EXPECT_EQ(view->call("receiveMessages", {}).as_list()->size(), 0u);
  EXPECT_EQ(cache->stats().pulls, 0u);
  EXPECT_EQ(cache->stats().pushes, 0u);
  // Hooks still fired (acquire/release brackets).
  EXPECT_GT(cache->stats().acquires, 0u);
}

TEST(ViewRuntime, PullOnlyPolicyNeverWritesBack) {
  MailWorld w;
  w.must_generate(mail::view_xml_partner());
  auto original = minilang::instantiate(w.registry, "MailClient");
  auto view = minilang::instantiate(w.registry, "ViewMailClient_Partner");
  view->set_field("notesI_rmi", Value::object(original));
  view->set_field("addressI_switch", Value::object(original));
  attach_cache_manager(view, Value::object(original),
                       CacheManager::Policy::kPull);
  original->call("deliver", {mail::make_message("b", "a", "s", "t")});
  EXPECT_EQ(view->call("receiveMessages", {}).as_list()->size(), 1u);
  // No write-back: the original still has the message.
  EXPECT_EQ(original->get_field("inbox").as_list()->size(), 1u);
}

TEST(ViewRuntime, ExtractMergeRoundTripsViewState) {
  MailWorld w;
  w.must_generate(mail::view_xml_member());
  auto view = minilang::instantiate(w.registry, "ViewMailClient_Member");
  view->call("addNote", {Value::string("n1")});
  view->call("sendMessage", {mail::make_message("a", "b", "s", "t")});

  const Value image = view->call("extractImageFromView", {});
  ASSERT_TRUE(image.is_bytes());

  auto clone = minilang::instantiate(w.registry, "ViewMailClient_Member");
  clone->call("mergeImageIntoView", {image});
  EXPECT_EQ(clone->get_field("notes").as_list()->size(), 1u);
  EXPECT_EQ(clone->get_field("outbox").as_list()->size(), 1u);
}

// ----------------------------------------------------------------- codegen

TEST(Codegen, PartnerSourceMatchesTable5Shape) {
  MailWorld w;
  auto cls = w.must_generate(mail::view_xml_partner());
  const std::string source = generate_java_source(*cls, w.registry);

  // Interface markers (paper: rmi extends java.rmi.Remote, switchboard
  // implements Serializable).
  EXPECT_NE(source.find("public interface NotesI extends Remote"),
            std::string::npos);
  EXPECT_NE(source.find("throws RemoteException"), std::string::npos);
  EXPECT_NE(source.find("public interface AddressI extends Serializable"),
            std::string::npos);

  // Class header.
  EXPECT_NE(source.find("public class ViewMailClient_Partner implements"),
            std::string::npos);

  // Injected fields.
  EXPECT_NE(source.find("notesI_rmi;"), std::string::npos);
  EXPECT_NE(source.find("addressI_switch;"), std::string::npos);
  EXPECT_NE(source.find("CacheManager cacheManager;"), std::string::npos);
  EXPECT_NE(source.find("accountCopy;"), std::string::npos);

  // Constructor lookup preamble.
  EXPECT_NE(source.find("Naming.lookup"), std::string::npos);
  EXPECT_NE(source.find("Switchboard.lookup"), std::string::npos);
  EXPECT_NE(source.find("new CacheManager"), std::string::npos);

  // Stub delegation and coherence wrapping.
  EXPECT_NE(source.find("return addressI_switch.getPhone(name);"),
            std::string::npos);
  EXPECT_NE(source.find("cacheManager.acquireImage();"), std::string::npos);
  EXPECT_NE(source.find("cacheManager.releaseImage();"), std::string::npos);

  // Coherence methods present.
  EXPECT_NE(source.find("mergeImageIntoView"), std::string::npos);
  EXPECT_NE(source.find("extractImageFromObj"), std::string::npos);
}

TEST(Codegen, PartnerSourceGoldenRegression) {
  // Codegen is deterministic; pin the exact emitted header lines so any
  // drift in Table 5 reproduction is caught.
  MailWorld w;
  auto cls = w.must_generate(mail::view_xml_partner());
  const std::string source = generate_java_source(*cls, w.registry);
  const char* expected_lines[] = {
      "public interface MessageI {",
      "public interface NotesI extends Remote {",
      "  public Object addNote(Object note) throws RemoteException;",
      "public interface AddressI extends Serializable {",
      "public class ViewMailClient_Partner implements MessageI, NotesI, "
      "AddressI {",
      "  Set inbox;",
      "  Set outbox;",
      "  NotesI notesI_rmi;",
      "  AddressI addressI_switch;",
      "  Account accountCopy;",
      "  CacheManager cacheManager;",
      "  public ViewMailClient_Partner() {",
      "    notesI_rmi = (NotesI) Naming.lookup(...);",
      "    addressI_switch = (AddressI) Switchboard.lookup(...);",
  };
  for (const char* line : expected_lines) {
    EXPECT_NE(source.find(line), std::string::npos) << "missing: " << line
                                                    << "\n"
                                                    << source;
  }
  // Emission is stable across calls.
  EXPECT_EQ(source, generate_java_source(*cls, w.registry));
}

TEST(Codegen, MemberSourceHasLocalBodies) {
  MailWorld w;
  auto cls = w.must_generate(mail::view_xml_member());
  const std::string source = generate_java_source(*cls, w.registry);
  EXPECT_NE(source.find("push(outbox, mes);"), std::string::npos);
  // Local interfaces carry no remote markers.
  EXPECT_EQ(source.find("extends Remote"), std::string::npos);
  EXPECT_EQ(source.find("extends Serializable"), std::string::npos);
  // Private helper rendered as private.
  EXPECT_NE(source.find("private Object findAccount"), std::string::npos);
}

}  // namespace
}  // namespace psf::views
