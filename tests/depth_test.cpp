// Deeper-coverage suite: adaptation after environment changes, chained
// (view-of-view) generation, delegated assignment chains, and network model
// corners.
#include <gtest/gtest.h>

#include "mail/scenario.hpp"
#include "psf/framework.hpp"
#include "views/codegen.hpp"
#include "views/vig.hpp"

namespace psf {
namespace {

using drbac::Principal;
using mail::Scenario;
using minilang::Value;
using util::kMillisecond;

// -------------------------------------------------------------- adaptation

struct ScenarioFixture : ::testing::Test {
  Scenario s = mail::build_scenario();
};

TEST_F(ScenarioFixture, AdaptationMovesProviderAfterLinkDegrades) {
  // Bob starts with a loose-latency session; the link he relies on
  // degrades; adapt() re-plans under the new environment.
  framework::QoS qos;
  qos.max_latency_ms = 60;
  auto before = s.psf->request(s.request_for(s.bob, Scenario::kSdPc, qos));
  ASSERT_TRUE(before.ok()) << before.error().message;
  EXPECT_TRUE(s.psf->session_still_valid(before.value()));

  // The WAN latency doubles: any plan serving from ny-server violates QoS.
  s.psf->update_link(Scenario::kNyServer, Scenario::kSdPc,
                     {100 * kMillisecond, 200, false});
  if (before.value().provider_node == Scenario::kNyServer) {
    EXPECT_FALSE(s.psf->session_still_valid(before.value()));
  }
  auto after = s.psf->adapt(before.value());
  ASSERT_TRUE(after.ok()) << after.error().message;
  EXPECT_EQ(after.value().provider_node, Scenario::kSdPc);
  EXPECT_TRUE(s.psf->session_still_valid(after.value()));
  // The superseded channel was closed.
  EXPECT_FALSE(before.value().connection->open());
  // The new session works end to end.
  EXPECT_EQ(after.value()
                .view->call("getPhone", {Value::string("alice")})
                .as_string(),
            "555-0100");
}

TEST_F(ScenarioFixture, AdaptationReleasesClientCpu) {
  framework::QoS qos;
  auto session = s.psf->request(s.request_for(s.bob, Scenario::kSdPc, qos));
  ASSERT_TRUE(session.ok());
  const std::int64_t used = s.psf->node(Scenario::kSdPc)->cpu_used();
  auto adapted = s.psf->adapt(session.value());
  ASSERT_TRUE(adapted.ok()) << adapted.error().message;
  // Old view's CPU released, new view's reserved: net unchanged.
  EXPECT_EQ(s.psf->node(Scenario::kSdPc)->cpu_used(), used);
}

TEST_F(ScenarioFixture, MonitorEventsDriveAdaptationLoop) {
  framework::QoS qos;
  qos.max_latency_ms = 60;
  auto session = s.psf->request(s.request_for(s.bob, Scenario::kSdPc, qos));
  ASSERT_TRUE(session.ok());

  int adaptations = 0;
  s.psf->monitor().subscribe(
      [&](const framework::MonitorModule::Event&) {
        if (!s.psf->session_still_valid(session.value())) {
          auto adapted = s.psf->adapt(session.value());
          if (adapted.ok()) {
            session = std::move(adapted);
            ++adaptations;
          }
        }
      });
  s.psf->update_link(Scenario::kNyServer, Scenario::kSdPc,
                     {200 * kMillisecond, 200, false});
  if (adaptations > 0) {
    EXPECT_TRUE(s.psf->session_still_valid(session.value()));
  }
  SUCCEED();
}

// ------------------------------------------------------------ view-of-view

TEST(ViewOfView, VigGeneratesViewsOfGeneratedViews) {
  // The replica chain implies views can represent views: generate a
  // restricted view whose represented object is itself a VIG product.
  minilang::ClassRegistry registry;
  mail::register_all(registry);
  views::Vig vig(&registry);
  auto base = views::ViewDefinition::from_xml(mail::view_xml_member());
  ASSERT_TRUE(vig.generate(base.value()).ok());

  auto nested = views::ViewDefinition::from_xml(R"(
<View name="ViewOfMemberView">
  <Represents name="ViewMailClient_Member"/>
  <Restricts>
    <Interface name="AddressI" type="local"/>
  </Restricts>
  <Adds_Methods>
    <MSign>constructor()</MSign><MBody>accounts = map();</MBody>
  </Adds_Methods>
</View>)");
  ASSERT_TRUE(nested.ok());
  auto cls = vig.generate(nested.value());
  ASSERT_TRUE(cls.ok()) << cls.error().message;
  EXPECT_EQ(cls.value()->represents, "ViewMailClient_Member");
  EXPECT_NE(cls.value()->find_method("getPhone"), nullptr);
  EXPECT_EQ(cls.value()->find_method("sendMessage"), nullptr);

  // Chain them at run time: nested view over member view over original.
  auto original = minilang::instantiate(registry, "MailClient");
  original->call("addAccount", {Value::string("zoe"), Value::string("777"),
                                Value::string("z@x")});
  auto middle = minilang::instantiate(registry, "ViewMailClient_Member");
  views::attach_cache_manager(middle, Value::object(original));
  auto top = minilang::instantiate(registry, "ViewOfMemberView");
  views::attach_cache_manager(
      top, Value::object(std::make_shared<views::ImageEndpoint>(middle)));
  EXPECT_EQ(top->call("getPhone", {Value::string("zoe")}).as_string(), "777");
}

TEST(ViewOfView, CodegenWorksForNestedViews) {
  minilang::ClassRegistry registry;
  mail::register_all(registry);
  views::Vig vig(&registry);
  auto base = views::ViewDefinition::from_xml(mail::view_xml_member());
  ASSERT_TRUE(vig.generate(base.value()).ok());
  auto nested = views::ViewDefinition::from_xml(R"(
<View name="N"><Represents name="ViewMailClient_Member"/>
  <Restricts><Interface name="NotesI" type="rmi"/></Restricts>
  <Adds_Methods><MSign>constructor()</MSign><MBody>return null;</MBody></Adds_Methods>
</View>)");
  ASSERT_TRUE(nested.ok());
  auto cls = vig.generate(nested.value());
  ASSERT_TRUE(cls.ok()) << cls.error().message;
  const std::string source = views::generate_java_source(*cls.value(), registry);
  EXPECT_NE(source.find("public class N"), std::string::npos);
  EXPECT_NE(source.find("notesI_rmi"), std::string::npos);
}

// ------------------------------------------------- delegated assignments

TEST(DelegatedAssignment, AssignmentRightsChainThroughRoles) {
  // A grants the *role* B.admin the right of assignment over A.r; C holds
  // B.admin; C then third-party-issues A.r to D. The proof must chain:
  // D -> A.r (by C), supported by C -> B.admin -> assignment of A.r.
  util::Rng rng(55);
  drbac::Repository repo;
  drbac::Entity a = drbac::Entity::create("A", rng);
  drbac::Entity b = drbac::Entity::create("B", rng);
  drbac::Entity c = drbac::Entity::create("C", rng);
  drbac::Entity d = drbac::Entity::create("D", rng);

  // [B.admin -> A.r '] A : role-held assignment right.
  repo.add(drbac::issue(a, Principal::of_role(b, "admin"),
                        drbac::role_of(a, "r"), {}, /*assignment=*/true, 0, 0,
                        repo.next_serial()));
  // [C -> B.admin] B.
  repo.add(drbac::issue(b, Principal::of_entity(c),
                        drbac::role_of(b, "admin"), {}, false, 0, 0,
                        repo.next_serial()));
  // [D -> A.r] C  (third-party issue by C).
  auto grant = drbac::issue(c, Principal::of_entity(d), drbac::role_of(a, "r"),
                            {}, false, 0, 0, repo.next_serial());
  repo.add(grant);

  drbac::Engine engine(&repo);
  auto proof = engine.prove(Principal::of_entity(d), drbac::role_of(a, "r"), 0);
  ASSERT_TRUE(proof.ok()) << proof.error().message;
  EXPECT_EQ(proof.value().credentials.size(), 1u);
  EXPECT_EQ(proof.value().support.size(), 2u);  // admin grant + assignment
  EXPECT_TRUE(engine.validate(proof.value(), 0));

  // Revoking C's admin membership kills D's authorization.
  for (const auto& credential : proof.value().support) {
    if (!credential->assignment) repo.revoke(credential->serial);
  }
  EXPECT_FALSE(engine.validate(proof.value(), 0));
}

TEST(DelegatedAssignment, WithoutAdminMembershipThirdPartyIssueFails) {
  util::Rng rng(56);
  drbac::Repository repo;
  drbac::Entity a = drbac::Entity::create("A", rng);
  drbac::Entity b = drbac::Entity::create("B", rng);
  drbac::Entity c = drbac::Entity::create("C", rng);
  drbac::Entity d = drbac::Entity::create("D", rng);
  repo.add(drbac::issue(a, Principal::of_role(b, "admin"),
                        drbac::role_of(a, "r"), {}, true, 0, 0,
                        repo.next_serial()));
  // C is NOT B.admin. C's third-party grant must be unusable.
  repo.add(drbac::issue(c, Principal::of_entity(d), drbac::role_of(a, "r"),
                        {}, false, 0, 0, repo.next_serial()));
  drbac::Engine engine(&repo);
  EXPECT_FALSE(
      engine.prove(Principal::of_entity(d), drbac::role_of(a, "r"), 0).ok());
}

// -------------------------------------------------------- network corners

TEST(NetworkCorners, LinkUpdateChangesRouting) {
  switchboard::Network net;
  net.connect("a", "b", {10 * kMillisecond, 0, true});
  net.connect("a", "m", {2 * kMillisecond, 0, true});
  net.connect("m", "b", {2 * kMillisecond, 0, true});
  EXPECT_EQ(net.path("a", "b")->hops.size(), 3u);  // via m
  net.set_link("a", "b", {1 * kMillisecond, 0, true});
  EXPECT_EQ(net.path("a", "b")->hops.size(), 2u);  // direct now
}

TEST(NetworkCorners, MultiHopTransferChargesEveryLink) {
  switchboard::Network net;
  net.connect("a", "m", {kMillisecond, 0, true});
  net.connect("m", "b", {kMillisecond, 0, true});
  ASSERT_TRUE(net.transfer("a", "b", 500).has_value());
  EXPECT_EQ(net.stats("a", "m").bytes, 500u);
  EXPECT_EQ(net.stats("m", "b").bytes, 500u);
  EXPECT_EQ(net.total_messages(), 2u);
}

TEST(NetworkCorners, TransferToUnknownHostFails) {
  switchboard::Network net;
  net.add_host("a");
  EXPECT_FALSE(net.transfer("a", "nowhere", 1).has_value());
}

TEST(NetworkCorners, ZeroByteTransferStillHasLatency) {
  switchboard::Network net;
  net.connect("a", "b", {7 * kMillisecond, 100, true});
  auto t = net.transfer("a", "b", 0);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 7 * kMillisecond);
}

}  // namespace
}  // namespace psf
