#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "drbac/credential.hpp"
#include "minilang/value.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "switchboard/authorizer.hpp"
#include "switchboard/channel.hpp"
#include "switchboard/network.hpp"
#include "util/thread_pool.hpp"

namespace psf::obs {
namespace {

using minilang::Value;
using util::kMillisecond;

// ----------------------------------------------------------------- metrics

TEST(Metrics, CounterGaugeBasics) {
  Registry registry;
  Counter& c = registry.counter("test.counter");
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);

  Gauge& g = registry.gauge("test.gauge");
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
  g.add(10);
  EXPECT_EQ(g.value(), 3);
}

TEST(Metrics, RegistryReturnsSameHandleForSameName) {
  Registry registry;
  Counter& a = registry.counter("test.same");
  Counter& b = registry.counter("test.same");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
  // Kinds have separate namespaces: a gauge named like a counter is distinct.
  Gauge& g = registry.gauge("test.same");
  g.set(5);
  EXPECT_EQ(a.value(), 1u);
}

TEST(Metrics, CountersAreExactUnderConcurrency) {
  Registry registry;
  constexpr int kThreads = 8;
  constexpr int kIncsPerThread = 10'000;
  {
    util::ThreadPool pool(kThreads);
    std::vector<std::future<void>> done;
    for (int t = 0; t < kThreads; ++t) {
      done.push_back(pool.submit([&registry] {
        // Re-looking up each time also exercises sharded registration.
        Counter& c = registry.counter("test.concurrent");
        Histogram& h = registry.histogram("test.concurrent_us");
        for (int i = 0; i < kIncsPerThread; ++i) {
          c.inc();
          h.observe(i % 100);
        }
      }));
    }
    for (auto& f : done) f.get();
  }
  EXPECT_EQ(registry.counter("test.concurrent").value(),
            static_cast<std::uint64_t>(kThreads) * kIncsPerThread);
  EXPECT_EQ(registry.histogram("test.concurrent_us").count(),
            static_cast<std::uint64_t>(kThreads) * kIncsPerThread);
}

TEST(Metrics, HistogramPercentilesOnKnownDistribution) {
  Registry registry;
  Histogram& h = registry.histogram(
      "test.uniform", {10, 20, 30, 40, 50, 60, 70, 80, 90, 100});
  for (int v = 1; v <= 100; ++v) h.observe(v);

  const Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_EQ(snap.sum, 5050);
  EXPECT_EQ(snap.min, 1);
  EXPECT_EQ(snap.max, 100);
  // Uniform 1..100: percentile p lands in the bucket containing p.
  EXPECT_NEAR(static_cast<double>(snap.percentile(50)), 50.0, 10.0);
  EXPECT_NEAR(static_cast<double>(snap.percentile(95)), 95.0, 10.0);
  EXPECT_NEAR(static_cast<double>(snap.percentile(99)), 99.0, 10.0);
}

TEST(Metrics, HistogramOverflowBucketReportsObservedMax) {
  Registry registry;
  Histogram& h = registry.histogram("test.overflow", {10});
  h.observe(5);
  h.observe(12'345);  // beyond the last bound -> +Inf bucket
  EXPECT_EQ(h.percentile(99), 12'345);
}

TEST(Metrics, ResetZeroesValuesButKeepsHandles) {
  Registry registry;
  Counter& c = registry.counter("test.reset");
  Histogram& h = registry.histogram("test.reset_us");
  c.inc(9);
  h.observe(3);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(&c, &registry.counter("test.reset"));
}

// --------------------------------------------------------------- exporters

TEST(Export, PrometheusTextShape) {
  Registry registry;
  registry.counter("test.export.hits").inc(3);
  registry.gauge("test.export.depth").set(-2);
  registry.histogram("test.export.lat_us", {10, 100}).observe(42);

  const std::string text = to_prometheus_text(registry.snapshot());
  EXPECT_NE(text.find("# TYPE test_export_hits counter"), std::string::npos);
  EXPECT_NE(text.find("test_export_hits 3"), std::string::npos);
  EXPECT_NE(text.find("test_export_depth -2"), std::string::npos);
  // Cumulative buckets + the implicit +Inf bucket + sum/count series.
  EXPECT_NE(text.find("test_export_lat_us_bucket{le=\"100\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("test_export_lat_us_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("test_export_lat_us_count 1"), std::string::npos);
  EXPECT_NE(text.find("test_export_lat_us_p95"), std::string::npos);
}

TEST(Export, JsonSnapshotShape) {
  Registry registry;
  registry.counter("test.export.json").inc();
  const std::string json = to_json(registry.snapshot());
  EXPECT_NE(json.find("\"context\""), std::string::npos);
  EXPECT_NE(json.find("metrics-snapshot-v1"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"test.export.json\""), std::string::npos);
  EXPECT_NE(json.find("\"counter\""), std::string::npos);
}

// -------------------------------------------------------------- exemplars

TEST(Metrics, ExemplarCapturedAboveThresholdLinksActiveTrace) {
  SpanCollector::instance().clear();
  Registry registry;
  Histogram& h = registry.histogram("test.exemplar.lat_us", {10, 100, 1000});
  h.set_exemplar_threshold(100);

  // Below threshold, and above threshold with no active span: no exemplar.
  h.observe(5);
  h.observe(500);
  EXPECT_FALSE(h.snapshot().tail_exemplar().valid);

  TraceId trace = 0;
  {
    ScopedSpan span("test.exemplar");
    trace = span.context().trace_id;
    h.observe(500);
  }
  const Histogram::Exemplar ex = h.snapshot().tail_exemplar();
  ASSERT_TRUE(ex.valid);
  EXPECT_EQ(ex.trace_id, trace);
  EXPECT_EQ(ex.value, 500);
  // Capture pinned the trace so its spans survive ring eviction.
  EXPECT_TRUE(SpanCollector::instance().is_pinned(trace));
  // The exemplar resolves to real spans.
  EXPECT_FALSE(SpanCollector::instance().spans_for_trace(trace).empty());
}

TEST(Metrics, ExemplarThresholdSurvivesRegistryReset) {
  Registry registry;
  Histogram& h = registry.histogram("test.exemplar.reset_us", {10, 100});
  h.set_exemplar_threshold(42);
  registry.reset();
  // Threshold is configuration, not a value; reset keeps it but clears any
  // captured exemplars.
  EXPECT_EQ(h.exemplar_threshold(), 42);
  EXPECT_FALSE(h.snapshot().tail_exemplar().valid);
}

TEST(Export, PrometheusExemplarSyntaxRoundTrips) {
  SpanCollector::instance().clear();
  Registry registry;
  Histogram& h = registry.histogram("test.exemplar.export_us", {10, 100});
  h.set_exemplar_threshold(100);
  TraceId trace = 0;
  {
    ScopedSpan span("test.exemplar.export");
    trace = span.context().trace_id;
    h.observe(5000);  // lands in +Inf, captures the exemplar
  }

  const std::string text = to_prometheus_text(registry.snapshot());
  // OpenMetrics exemplar suffix on the +Inf bucket line:
  //   name_bucket{le="+Inf"} 1 # {trace_id="...",span_id="..."} 5000
  const std::string line_start = "test_exemplar_export_us_bucket{le=\"+Inf\"}";
  const std::size_t line = text.find(line_start);
  ASSERT_NE(line, std::string::npos);
  const std::size_t eol = text.find('\n', line);
  const std::string bucket_line = text.substr(line, eol - line);
  const std::size_t marker = bucket_line.find(" # {trace_id=\"");
  ASSERT_NE(marker, std::string::npos) << bucket_line;

  // Round-trip: parse the trace id back out and resolve it to spans.
  const std::size_t id_begin = marker + std::string(" # {trace_id=\"").size();
  const std::size_t id_end = bucket_line.find('"', id_begin);
  ASSERT_NE(id_end, std::string::npos);
  const std::string hex = bucket_line.substr(id_begin, id_end - id_begin);
  EXPECT_EQ(hex.size(), 16u);
  const TraceId parsed = std::strtoull(hex.c_str(), nullptr, 16);
  EXPECT_EQ(parsed, trace);
  EXPECT_FALSE(SpanCollector::instance().spans_for_trace(parsed).empty());
  // The exemplar value trails the span_id group.
  EXPECT_NE(bucket_line.find("\"} 5000"), std::string::npos) << bucket_line;
}

TEST(Export, PrometheusLabelEscapingRoundTrips) {
  // The exposition format defines exactly three escapes in quoted label
  // values: \\ , \" , \n. Everything else passes through verbatim.
  const std::string nasty = "a\\b\"c\nd{e}f,g=h\ti";
  const std::string escaped = prometheus_escape_label(nasty);
  EXPECT_EQ(escaped, "a\\\\b\\\"c\\nd{e}f,g=h\ti");
  // No raw quote, backslash, or newline survives unescaped — the emitted
  // label value can never terminate the quoted string early.
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] == '\\') {
      ASSERT_LT(i + 1, escaped.size());
      const char next = escaped[++i];
      EXPECT_TRUE(next == '\\' || next == '"' || next == 'n');
    } else {
      EXPECT_NE(escaped[i], '"');
      EXPECT_NE(escaped[i], '\n');
    }
  }

  // Round-trip through a spec unescaper recovers the original exactly.
  std::string unescaped;
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] == '\\') {
      const char next = escaped[++i];
      unescaped += next == 'n' ? '\n' : next;
    } else {
      unescaped += escaped[i];
    }
  }
  EXPECT_EQ(unescaped, nasty);

  // Benign values are untouched.
  EXPECT_EQ(prometheus_escape_label("0123456789abcdef"), "0123456789abcdef");
  EXPECT_EQ(prometheus_escape_label(""), "");
}

// ------------------------------------------------------------------ spans

TEST(Trace, ScopedSpansLinkParentAndChild) {
  SpanCollector::instance().clear();
  TraceId trace = 0;
  SpanId outer_id = 0;
  {
    ScopedSpan outer("test.outer");
    trace = outer.context().trace_id;
    outer_id = outer.context().span_id;
    ASSERT_TRUE(outer.context().valid());
    { ScopedSpan inner("test.inner"); }
  }
  const auto spans = SpanCollector::instance().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Inner finishes (and records) first.
  EXPECT_EQ(spans[0].name, "test.inner");
  EXPECT_EQ(spans[0].trace_id, trace);
  EXPECT_EQ(spans[0].parent_id, outer_id);
  EXPECT_EQ(spans[1].name, "test.outer");
  EXPECT_EQ(spans[1].parent_id, 0u);
}

TEST(Trace, RingBufferEvictsOldestFirst) {
  SpanCollector collector(4);
  for (int i = 0; i < 6; ++i) {
    SpanRecord r;
    r.trace_id = 1;
    r.span_id = static_cast<SpanId>(i + 1);
    r.name = "s" + std::to_string(i);
    collector.record(std::move(r));
  }
  EXPECT_EQ(collector.recorded(), 6u);
  EXPECT_EQ(collector.dropped(), 2u);
  const auto spans = collector.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans.front().name, "s2");  // s0, s1 evicted
  EXPECT_EQ(spans.back().name, "s5");
}

TEST(Trace, ErrorSpansSurviveRingEviction) {
  SpanCollector collector(4);
  for (int i = 0; i < 8; ++i) {
    SpanRecord r;
    r.trace_id = static_cast<TraceId>(100 + i);
    r.span_id = static_cast<SpanId>(i + 1);
    r.name = "s" + std::to_string(i);
    r.error = (i == 0);  // the very first span failed
    collector.record(std::move(r));
  }
  // s0 was displaced from the ring but kept in the protected store; the
  // other three displaced spans (s1..s3) were boring and died.
  EXPECT_EQ(collector.dropped(), 3u);
  EXPECT_EQ(collector.retained_count(), 1u);
  const auto spans = collector.snapshot();
  ASSERT_EQ(spans.size(), 5u);
  EXPECT_EQ(spans.front().name, "s0");
  EXPECT_TRUE(spans.front().error);
}

TEST(Trace, PinnedTraceSpansSurviveRingEviction) {
  SpanCollector collector(4);
  collector.pin_trace(777);
  EXPECT_TRUE(collector.is_pinned(777));
  EXPECT_EQ(collector.pinned_count(), 1u);
  for (int i = 0; i < 8; ++i) {
    SpanRecord r;
    r.trace_id = (i == 1) ? 777 : static_cast<TraceId>(100 + i);
    r.span_id = static_cast<SpanId>(i + 1);
    r.name = "s" + std::to_string(i);
    collector.record(std::move(r));
  }
  // The pinned trace's span survived eviction; spans_for_trace finds it.
  const auto pinned_spans = collector.spans_for_trace(777);
  ASSERT_EQ(pinned_spans.size(), 1u);
  EXPECT_EQ(pinned_spans.front().name, "s1");
  EXPECT_EQ(collector.dropped(), 3u);  // s0, s2, s3 were boring
}

TEST(Trace, PinLruEvictsOldestPinBeyondCapacity) {
  SpanCollector collector(4);
  // 65 pins: one beyond kMaxPinnedTraces (64) — the oldest pin falls out.
  for (TraceId t = 1; t <= 65; ++t) collector.pin_trace(t);
  EXPECT_EQ(collector.pinned_count(), 64u);
  EXPECT_FALSE(collector.is_pinned(1));
  EXPECT_TRUE(collector.is_pinned(2));
  EXPECT_TRUE(collector.is_pinned(65));
  // Re-pinning refreshes: 2 moves to the young end, so pinning one more
  // evicts 3, not 2.
  collector.pin_trace(2);
  collector.pin_trace(66);
  EXPECT_TRUE(collector.is_pinned(2));
  EXPECT_FALSE(collector.is_pinned(3));
}

TEST(Trace, ScopedSpanRecordsErrorOnUnwindAndExplicitSet) {
  SpanCollector::instance().clear();
  try {
    ScopedSpan span("test.throws");
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  {
    ScopedSpan span("test.set-error");
    span.set_error();
  }
  { ScopedSpan span("test.fine"); }
  const auto spans = SpanCollector::instance().snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "test.throws");
  EXPECT_TRUE(spans[0].error);
  EXPECT_EQ(spans[1].name, "test.set-error");
  EXPECT_TRUE(spans[1].error);
  EXPECT_EQ(spans[2].name, "test.fine");
  EXPECT_FALSE(spans[2].error);
}

TEST(Trace, HeaderRoundTrip) {
  const SpanContext ctx{0x1122334455667788ull, 0x99aabbccddeeff00ull};
  const util::Bytes payload = util::to_bytes("request-payload");
  const util::Bytes wire = with_trace_header(ctx, payload);
  EXPECT_EQ(wire.size(), payload.size() + kTraceHeaderSize);

  SpanContext out;
  util::Bytes stripped;
  ASSERT_TRUE(strip_trace_header(wire, out, stripped));
  EXPECT_EQ(out.trace_id, ctx.trace_id);
  EXPECT_EQ(out.span_id, ctx.span_id);
  EXPECT_EQ(stripped, payload);

  // No magic -> legacy frame, outputs untouched.
  SpanContext untouched;
  util::Bytes ignored;
  EXPECT_FALSE(strip_trace_header(payload, untouched, ignored));
  EXPECT_EQ(untouched.trace_id, 0u);
}

// --------------------------- TRC1 hardening (ISSUE 4 satellite): a corrupt
// or truncated header must degrade to "no context" with outputs untouched,
// and must never read past the buffer.

TEST(Trace, TruncatedHeaderOfEveryLengthDegradesToNoContext) {
  const SpanContext ctx{0x1111222233334444ull, 0x5555666677778888ull};
  const util::Bytes full = with_trace_header(ctx, util::to_bytes("payload"));
  for (std::size_t len = 0; len < kTraceHeaderSize; ++len) {
    const util::Bytes truncated(full.begin(),
                                full.begin() + static_cast<std::ptrdiff_t>(len));
    SpanContext out{0xdead, 0xbeef};  // sentinels: must survive untouched
    util::Bytes payload = util::to_bytes("sentinel");
    EXPECT_FALSE(strip_trace_header(truncated, out, payload)) << len;
    EXPECT_EQ(out.trace_id, 0xdeadu) << len;
    EXPECT_EQ(out.span_id, 0xbeefu) << len;
    EXPECT_EQ(payload, util::to_bytes("sentinel")) << len;
  }
}

TEST(Trace, CorruptMagicByteAnywhereIsALegacyFrame) {
  const SpanContext ctx{42, 43};
  const util::Bytes good = with_trace_header(ctx, util::to_bytes("x"));
  for (std::size_t i = 0; i < 4; ++i) {
    util::Bytes mangled = good;
    mangled[i] ^= 0xFF;
    SpanContext out;
    util::Bytes payload;
    EXPECT_FALSE(strip_trace_header(mangled, out, payload)) << "byte " << i;
    EXPECT_EQ(out.trace_id, 0u);
  }
  // Corrupting the IDs (not the magic) still parses — the IDs are opaque —
  // but a zeroed trace id yields an *invalid* context the receiver ignores.
  util::Bytes zero_ids = good;
  for (std::size_t i = 4; i < kTraceHeaderSize; ++i) zero_ids[i] = 0;
  SpanContext out;
  util::Bytes payload;
  ASSERT_TRUE(strip_trace_header(zero_ids, out, payload));
  EXPECT_FALSE(out.valid());
  EXPECT_EQ(payload, util::to_bytes("x"));
}

TEST(Trace, HeaderOnlyFrameYieldsEmptyPayload) {
  util::Bytes wire;
  append_trace_header(SpanContext{9, 10}, wire);
  ASSERT_EQ(wire.size(), kTraceHeaderSize);
  SpanContext out;
  util::Bytes payload = util::to_bytes("junk");
  ASSERT_TRUE(strip_trace_header(wire, out, payload));
  EXPECT_EQ(out.trace_id, 9u);
  EXPECT_TRUE(payload.empty());
}

TEST(Trace, InvalidRemoteContextDoesNotReplaceCurrent) {
  // The receiving side wraps dispatch in ContextGuard(remote): a degraded
  // (invalid) remote context must leave the local context alone.
  ScopedSpan local("test.local");
  const SpanContext before = current_context();
  {
    ContextGuard guard(SpanContext{});  // invalid remote
    EXPECT_EQ(current_context().trace_id, before.trace_id);
  }
  {
    ContextGuard guard(SpanContext{77, 78});
    EXPECT_EQ(current_context().trace_id, 77u);
  }
  EXPECT_EQ(current_context().trace_id, before.trace_id);
}

// ------------------- SpanCollector under eviction pressure (ISSUE 4
// satellite): accounting stays exact and snapshots stay well-formed while
// spans finish concurrently.

TEST(Trace, DroppedAccountingExactUnderEvictionPressure) {
  SpanCollector collector(8);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  {
    util::ThreadPool pool(kThreads);
    std::vector<std::future<void>> done;
    for (int t = 0; t < kThreads; ++t) {
      done.push_back(pool.submit([&collector, t] {
        for (int i = 0; i < kPerThread; ++i) {
          SpanRecord r;
          r.trace_id = static_cast<TraceId>(t + 1);
          r.span_id = static_cast<SpanId>(i + 1);
          r.name = "pressure";
          collector.record(std::move(r));
        }
      }));
    }
    for (auto& f : done) f.get();
  }
  EXPECT_EQ(collector.recorded(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(collector.dropped(),
            static_cast<std::uint64_t>(kThreads) * kPerThread - 8);
  EXPECT_EQ(collector.snapshot().size(), 8u);
}

TEST(Trace, SnapshotDuringConcurrentFinishIsAlwaysWellFormed) {
  SpanCollector collector(16);
  std::atomic<bool> stop{false};
  std::vector<std::future<void>> writers;
  util::ThreadPool pool(3);
  for (int t = 0; t < 3; ++t) {
    writers.push_back(pool.submit([&collector, &stop] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        SpanRecord r;
        r.trace_id = 1;
        r.span_id = ++i;
        r.name = "concurrent-finish";
        collector.record(std::move(r));
      }
    }));
  }
  while (collector.recorded() < 100) {
    // Writers are warming up; eviction pressure needs a full ring.
  }
  for (int round = 0; round < 200; ++round) {
    const auto spans = collector.snapshot();
    EXPECT_LE(spans.size(), 16u);
    for (const auto& s : spans) {
      EXPECT_EQ(s.trace_id, 1u);        // never a torn/partial record
      EXPECT_EQ(s.name, "concurrent-finish");
      EXPECT_NE(s.span_id, 0u);
    }
    EXPECT_GE(collector.recorded(), spans.size());
  }
  stop.store(true);
  for (auto& w : writers) w.get();
  EXPECT_EQ(collector.dropped(), collector.recorded() - 16);
  EXPECT_EQ(collector.snapshot().size(), 16u);
}

TEST(Trace, SpansForTraceFiltersAndSurvivesEviction) {
  SpanCollector collector(6);
  for (std::uint64_t i = 0; i < 12; ++i) {
    SpanRecord r;
    r.trace_id = (i % 2 == 0) ? 100 : 200;
    r.span_id = i + 1;
    r.name = i % 2 == 0 ? "even" : "odd";
    collector.record(std::move(r));
  }
  // Ring holds the newest 6 (span ids 7..12): three per trace, oldest-first.
  const auto even = collector.spans_for_trace(100);
  ASSERT_EQ(even.size(), 3u);
  EXPECT_EQ(even.front().span_id, 7u);
  EXPECT_EQ(even.back().span_id, 11u);
  for (const auto& s : even) EXPECT_EQ(s.name, "even");
  EXPECT_EQ(collector.spans_for_trace(200).size(), 3u);
  EXPECT_TRUE(collector.spans_for_trace(0).empty());    // 0 = "absent"
  EXPECT_TRUE(collector.spans_for_trace(999).empty());  // unknown trace
}

// --------------------------------------- cross-host propagation + heartbeat

struct EchoService : minilang::CallTarget {
  SpanContext seen;  // the thread context while the service body runs
  Value call(const std::string& method, std::vector<Value> args) override {
    seen = current_context();
    (void)method;
    return args.empty() ? Value::null() : args[0];
  }
  std::string type_name() const override { return "echo"; }
};

struct ObsChannelWorld {
  util::Rng rng{7};
  std::shared_ptr<util::SimClock> clock = std::make_shared<util::SimClock>();
  switchboard::Network net;
  drbac::Repository repo;
  drbac::Entity guard{drbac::Entity::create("Comp.NY", rng)};
  drbac::Entity client{drbac::Entity::create("Alice", rng)};
  drbac::Entity server_id{drbac::Entity::create("Mail.Server", rng)};
  switchboard::Switchboard client_board{"client-host", &net, clock};
  switchboard::Switchboard server_board{"server-host", &net, clock};

  ObsChannelWorld() {
    net.connect("client-host", "server-host", {5 * kMillisecond, 10'000, false});
    switchboard::AuthorizationSuite server_suite;
    server_suite.identity = server_id;
    server_suite.authorizer =
        std::make_shared<switchboard::AcceptAllAuthorizer>();
    server_board.set_suite(server_suite);
  }

  std::shared_ptr<switchboard::Connection> connect() {
    switchboard::AuthorizationSuite suite;
    suite.identity = client;
    suite.authorizer = std::make_shared<switchboard::AcceptAllAuthorizer>();
    auto r = client_board.connect(server_board, suite, rng);
    EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().message);
    return r.value();
  }
};

TEST(Trace, TraceIdPropagatesThroughSwitchboardFrames) {
  ObsChannelWorld w;
  auto echo = std::make_shared<EchoService>();
  w.server_board.register_service("echo", echo);
  auto conn = w.connect();

  SpanCollector::instance().clear();
  TraceId client_trace = 0;
  {
    ScopedSpan client_span("test.client");
    client_trace = client_span.context().trace_id;
    const Value out = conn->call(switchboard::Connection::End::kA, "echo",
                                 "echo", {Value::string("ping")});
    EXPECT_EQ(out.as_string(), "ping");
  }

  // The service body ran under the caller's trace even though the context
  // crossed hosts inside a sealed frame.
  EXPECT_EQ(echo->seen.trace_id, client_trace);

  const auto spans = SpanCollector::instance().snapshot();
  const SpanRecord* call = nullptr;
  const SpanRecord* dispatch = nullptr;
  for (const auto& s : spans) {
    if (s.name == "switchboard.call") call = &s;
    if (s.name == "switchboard.dispatch") dispatch = &s;
  }
  ASSERT_NE(call, nullptr);
  ASSERT_NE(dispatch, nullptr);
  EXPECT_EQ(call->trace_id, client_trace);
  EXPECT_EQ(dispatch->trace_id, client_trace);
  // Parent chain: client span -> call span -> dispatch span.
  EXPECT_EQ(dispatch->parent_id, call->span_id);
  EXPECT_NE(call->parent_id, 0u);

  const std::string tree = format_trace(spans, client_trace);
  EXPECT_NE(tree.find("switchboard.call"), std::string::npos);
  EXPECT_NE(tree.find("switchboard.dispatch"), std::string::npos);
}

TEST(Heartbeat, UpdatesRttAfterRoundTripAndSurvivesRpcTraffic) {
  ObsChannelWorld w;
  auto echo = std::make_shared<EchoService>();
  w.server_board.register_service("echo", echo);
  auto conn = w.connect();

  EXPECT_EQ(conn->stats().last_heartbeat_rtt, 0);
  conn->heartbeat();
  const auto after_beat = conn->stats();
  // One full round trip: both one-way transfer times, not a doubled single
  // direction.
  EXPECT_GE(after_beat.last_heartbeat_rtt, 2 * 5 * kMillisecond);
  EXPECT_EQ(after_beat.last_heartbeat_rtt, after_beat.last_rtt);

  // RPC traffic updates last_rtt but must not clobber the heartbeat RTT.
  conn->call(switchboard::Connection::End::kA, "echo", "echo",
             {Value::string("x")});
  EXPECT_EQ(conn->stats().last_heartbeat_rtt, after_beat.last_heartbeat_rtt);

  // The liveness gauge reflects the last heartbeat round trip.
  EXPECT_GE(gauge("psf.switchboard.heartbeat.rtt_ns").value(),
            2 * 5 * kMillisecond);
}

}  // namespace
}  // namespace psf::obs
