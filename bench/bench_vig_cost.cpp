// Claim C6 (paper §4.3): "the generation of the code for a view is deferred
// to the time this view is first deployed... views incur management costs
// proportional to their utility." Reproduction: VIG generation cost as a
// function of class size (methods/fields) and inheritance depth, plus the
// lazy-vs-eager ablation: generating only the views a skewed client
// population actually requests vs pre-generating the whole catalog.
#include <iomanip>
#include <sstream>

#include "bench_util.hpp"
#include "minilang/parser.hpp"
#include "util/rng.hpp"
#include "views/vig.hpp"

namespace {

using namespace psf;
using minilang::ClassDef;
using minilang::ClassRegistry;
using minilang::InterfaceDef;
using minilang::MethodDef;
using minilang::Value;

// Synthesize a component class with `methods` public methods (each using a
// private helper and two fields) across `depth` inheritance levels.
void register_synthetic(ClassRegistry& registry, int methods, int depth) {
  InterfaceDef iface;
  iface.name = "BigI";
  for (int m = 0; m < methods; ++m) {
    iface.methods.push_back({"op" + std::to_string(m), {"x"}});
  }
  registry.register_interface(iface);

  const int per_level = std::max(1, methods / depth);
  int next = 0;
  std::string super;
  for (int level = 0; level < depth; ++level) {
    auto cls = std::make_shared<ClassDef>();
    cls->name = level + 1 == depth ? "Big" : "BigBase" + std::to_string(level);
    cls->super_name = super;
    super = cls->name;
    if (level + 1 == depth) cls->interfaces = {"BigI"};
    const int until = level + 1 == depth ? methods : next + per_level;
    for (; next < until && next < methods; ++next) {
      const std::string i = std::to_string(next);
      cls->fields.push_back({"fa" + i, "int", Value::integer(next)});
      cls->fields.push_back({"fb" + i, "int", Value::integer(0)});
      MethodDef helper;
      helper.name = "helper" + i;
      helper.params = {"x"};
      helper.visibility = minilang::Visibility::kPrivate;
      helper.source = "return x + fa" + i + ";";
      helper.body = std::move(minilang::parse_block_source(helper.source)).take();
      cls->methods.push_back(std::move(helper));
      MethodDef method;
      method.name = "op" + i;
      method.params = {"x"};
      method.interface_name = "BigI";
      method.source = "fb" + i + " = helper" + i + "(x); return fb" + i + ";";
      method.body = std::move(minilang::parse_block_source(method.source)).take();
      cls->methods.push_back(std::move(method));
    }
    registry.register_class(cls);
  }
}

std::string synthetic_view_xml() {
  return R"(<View name="BigView">
  <Represents name="Big"/>
  <Restricts><Interface name="BigI" type="local"/></Restricts>
  <Adds_Methods><MSign>constructor()</MSign><MBody>return null;</MBody></Adds_Methods>
</View>)";
}

void reproduce() {
  std::cout << "  VIG generation scales with represented-class size:\n";
  std::cout << "  methods  depth  copied-methods  copied-fields\n";
  for (int methods : {4, 16, 64}) {
    for (int depth : {1, 4}) {
      ClassRegistry registry;
      register_synthetic(registry, methods, depth);
      views::Vig vig(&registry);
      auto def = views::ViewDefinition::from_xml(synthetic_view_xml());
      auto cls = vig.generate(def.value());
      std::cout << "  " << std::setw(7) << methods << std::setw(7) << depth
                << std::setw(16) << cls.value()->methods.size()
                << std::setw(15) << cls.value()->fields.size() << "\n";
    }
  }
  std::cout << "\n  lazy vs eager (catalog of 20 views, zipf-ish demand):\n";
  std::cout << "  lazy generates only what is requested; eager pays for the\n"
            << "  whole catalog up front (see BM_LazyVsEagerGeneration).\n";
}

void BM_VigGenerateBySize(benchmark::State& state) {
  const int methods = static_cast<int>(state.range(0));
  auto def = views::ViewDefinition::from_xml(synthetic_view_xml());
  for (auto _ : state) {
    state.PauseTiming();
    ClassRegistry registry;
    register_synthetic(registry, methods, 1);
    views::VigOptions options;
    options.cache = false;
    views::Vig vig(&registry, options);
    state.ResumeTiming();
    auto cls = vig.generate(def.value());
    benchmark::DoNotOptimize(cls);
  }
  state.SetComplexityN(methods);
}
BENCHMARK(BM_VigGenerateBySize)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Complexity(benchmark::oN);

void BM_VigGenerateByInheritanceDepth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  auto def = views::ViewDefinition::from_xml(synthetic_view_xml());
  for (auto _ : state) {
    state.PauseTiming();
    ClassRegistry registry;
    register_synthetic(registry, 32, depth);
    views::VigOptions options;
    options.cache = false;
    views::Vig vig(&registry, options);
    state.ResumeTiming();
    auto cls = vig.generate(def.value());
    benchmark::DoNotOptimize(cls);
  }
}
BENCHMARK(BM_VigGenerateByInheritanceDepth)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_LazyVsEagerGeneration(benchmark::State& state) {
  // A catalog of 20 view definitions; clients request views with a skewed
  // distribution (most hit 3 views). Lazy (range0=1) generates on demand
  // with the cache; eager (range0=0) generates the full catalog first.
  const bool lazy = state.range(0) == 1;
  std::vector<std::string> catalog;
  for (int v = 0; v < 20; ++v) {
    std::ostringstream os;
    os << "<View name=\"BigView" << v << "\">\n"
       << "  <Represents name=\"Big\"/>\n"
       << "  <Restricts><Interface name=\"BigI\" type=\"local\"/></Restricts>\n"
       << "  <Adds_Methods><MSign>constructor()</MSign><MBody>return null;"
       << "</MBody></Adds_Methods>\n</View>";
    catalog.push_back(os.str());
  }
  util::Rng rng(13);
  for (auto _ : state) {
    state.PauseTiming();
    ClassRegistry registry;
    register_synthetic(registry, 32, 1);
    views::Vig vig(&registry);
    state.ResumeTiming();
    if (!lazy) {
      for (const auto& xml : catalog) {
        auto def = views::ViewDefinition::from_xml(xml);
        benchmark::DoNotOptimize(vig.generate(def.value()));
      }
    }
    // 50 client requests, skewed to the first 3 views.
    for (int r = 0; r < 50; ++r) {
      const std::size_t pick = rng.next_double() < 0.9
                                   ? rng.next_below(3)
                                   : rng.next_below(catalog.size());
      auto def = views::ViewDefinition::from_xml(catalog[pick]);
      benchmark::DoNotOptimize(vig.generate(def.value()));
    }
  }
}
BENCHMARK(BM_LazyVsEagerGeneration)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return psf::bench::run(
      argc, argv,
      "Claim C6: lazy view generation — cost proportional to utility",
      reproduce);
}
