// MiniLang execution engines head to head (DESIGN.md §4j): the same method
// bodies timed on the tree-walking interpreter and on the register-bytecode
// VM, pinned per call via InterpOptions::exec so one process measures both.
// Warm dispatch is what views feel in steady state — methods are compiled
// once (generation time in production, a warmup call here), then every
// request pays only the dispatch loop.
//
// Trajectory JSON: BENCH_minilang_exec.json. The regression gate holds the
// loop-method speedup (baselines.json: minilang_exec/derived/
// bytecode_speedup_loop) — the bytecode engine must stay >=2x the
// interpreter on loop-heavy bodies or CI fails.
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"
#include "mail/components.hpp"
#include "minilang/compile.hpp"
#include "minilang/interp.hpp"
#include "minilang/parser.hpp"
#include "views/vig.hpp"

namespace {

using namespace psf;
using minilang::ClassDef;
using minilang::ClassRegistry;
using minilang::ExecMode;
using minilang::InterpOptions;
using minilang::MethodDef;
using minilang::Value;

// Hot-method archetypes, mirroring what spliced view methods actually do:
// arithmetic loops, builtin/string scans, and field churn.
std::shared_ptr<ClassDef> make_hot_class() {
  auto cls = std::make_shared<ClassDef>();
  cls->name = "Hot";
  cls->fields.push_back({"balance", "int", Value::integer(0)});
  cls->fields.push_back({"count", "int", Value::integer(0)});
  cls->fields.push_back({"notes", "list", Value::null()});
  auto add = [&](const std::string& name, std::vector<std::string> params,
                 const std::string& body) {
    MethodDef m;
    m.name = name;
    m.params = std::move(params);
    m.source = body;
    m.body = std::move(minilang::parse_block_source(body)).take();
    cls->methods.push_back(std::move(m));
  };
  add("constructor", {}, R"(
      notes = list();
      var i = 0;
      while (i < 32) {
        push(notes, "note number " + i + " about meetings");
        i = i + 1;
      })");
  add("sumTo", {"n"}, R"(
      var total = 0;
      for (var i = 0; i < n; i = i + 1) {
        total = total + i * 2 - (i % 3);
      }
      return total;)");
  add("scanNotes", {"needle"}, R"(
      var hits = 0;
      var i = 0;
      while (i < len(notes)) {
        var note = notes[i];
        if (contains(note, needle) && len(note) > 10) {
          hits = hits + 1;
        }
        i = i + 1;
      }
      return hits;)");
  add("churn", {"delta"}, R"(
      balance = balance + delta;
      count = count + 1;
      if (balance > 1000000) { balance = 0; }
      return balance * count;)");
  add("fieldHot", {"n"}, R"(
      var total = 0;
      for (var i = 0; i < n; i = i + 1) {
        total = total + balance * balance + balance - count * count + count;
      }
      return total;)");
  return cls;
}

// Pin PSF_MINILANG_OPT for one compile phase (the flag is read per
// ensure_compiled call; compiled slots keep whatever the compile saw).
class OptEnv {
 public:
  explicit OptEnv(const char* value) {
    const char* prior = std::getenv("PSF_MINILANG_OPT");
    had_prior_ = prior != nullptr;
    if (had_prior_) prior_ = prior;
    setenv("PSF_MINILANG_OPT", value, 1);
  }
  ~OptEnv() {
    if (had_prior_) {
      setenv("PSF_MINILANG_OPT", prior_.c_str(), 1);
    } else {
      unsetenv("PSF_MINILANG_OPT");
    }
  }

 private:
  bool had_prior_ = false;
  std::string prior_;
};

double time_method(const std::shared_ptr<minilang::Instance>& self,
                   const std::string& method, const std::vector<Value>& args,
                   ExecMode mode, int iters) {
  InterpOptions options;
  options.exec = mode;
  return bench::time_us(iters, [&] {
    (void)minilang::invoke_method(self, method, args, /*external=*/true,
                                  options);
  });
}

void reproduce() {
  ClassRegistry registry;
  mail::register_all(registry);
  auto hot = make_hot_class();
  registry.register_class(hot);
  auto self = minilang::instantiate(registry, "Hot");

  // A generated view's copied method, for the end-to-end dispatch figure.
  views::Vig vig(&registry);
  auto def = views::ViewDefinition::from_xml(mail::view_xml_member());
  auto view_cls = vig.generate(def.value());
  auto view = minilang::instantiate(registry, view_cls.value()->name);

  bench::Report report("minilang_exec");
  const int iters = bench::iterations(400, 25);

  struct Case {
    const char* name;
    std::shared_ptr<minilang::Instance> self;
    std::string method;
    std::vector<Value> args;
  };
  const Case cases[] = {
      {"sum_loop", self, "sumTo", {Value::integer(1000)}},
      {"scan_notes", self, "scanNotes", {Value::string("meetings")}},
      {"field_churn", self, "churn", {Value::integer(7)}},
      {"view_add_note", view, "addNote", {Value::string("bench note")}},
  };

  std::printf("\n  %-16s %12s %12s %10s\n", "method", "interp us/op",
              "bytecode us/op", "speedup");
  for (const Case& c : cases) {
    // Warm both engines: compiles the bytecode once, faults nothing later.
    (void)time_method(c.self, c.method, c.args, ExecMode::kInterp, 1);
    (void)time_method(c.self, c.method, c.args, ExecMode::kBytecode, 1);
    const double interp_us =
        time_method(c.self, c.method, c.args, ExecMode::kInterp, iters);
    const double bytecode_us =
        time_method(c.self, c.method, c.args, ExecMode::kBytecode, iters);
    const double speedup = bytecode_us > 0 ? interp_us / bytecode_us : 0.0;
    std::printf("  %-16s %12.2f %12.2f %9.2fx\n", c.name, interp_us,
                bytecode_us, speedup);
    report.add(std::string(c.name) + ".interp_us", interp_us, "us", iters);
    report.add(std::string(c.name) + ".bytecode_us", bytecode_us, "us", iters);
    report.derived(std::string("bytecode_speedup_") +
                       (c.name == std::string("sum_loop") ? "loop" : c.name),
                   speedup);
  }

  // Optimizer delta (DESIGN.md §4l): the same field-heavy loop compiled with
  // PSF_MINILANG_OPT off and on, into separate registries so each compiled
  // slot keeps its phase's code. The instruction reduction is deterministic
  // (gated in baselines.json); the time delta is informational.
  {
    struct Phase {
      std::shared_ptr<ClassRegistry> registry;
      std::shared_ptr<minilang::Instance> self;
      std::size_t insns = 0;
    };
    auto compile_phase = [&](const char* env) {
      OptEnv pin(env);
      Phase phase;
      phase.registry = std::make_shared<ClassRegistry>();
      auto fresh = std::make_shared<ClassDef>();
      fresh->name = "Hot";
      fresh->fields = hot->fields;
      for (const auto& m : hot->methods) fresh->methods.push_back(m.clone());
      phase.registry->register_class(fresh);
      const MethodDef* method = fresh->find_method("fieldHot");
      const auto* code = minilang::ensure_compiled(*phase.registry, *fresh,
                                                   *method);
      phase.insns = code != nullptr ? code->code.size() : 0;
      phase.self = minilang::instantiate(*phase.registry, "Hot");
      return phase;
    };
    Phase unopt = compile_phase("0");
    Phase opt = compile_phase("1");
    const std::vector<Value> args = {Value::integer(1000)};
    const double unopt_us =
        time_method(unopt.self, "fieldHot", args, ExecMode::kBytecode, iters);
    const double opt_us =
        time_method(opt.self, "fieldHot", args, ExecMode::kBytecode, iters);
    const double speedup = opt_us > 0 ? unopt_us / opt_us : 0.0;
    const double reduction_pct =
        unopt.insns > 0
            ? 100.0 * static_cast<double>(unopt.insns - opt.insns) /
                  static_cast<double>(unopt.insns)
            : 0.0;
    std::printf("  %-16s %12.2f %12.2f %9.2fx  (%zu -> %zu insns, -%.1f%%)\n",
                "field_hot_opt", unopt_us, opt_us, speedup, unopt.insns,
                opt.insns, reduction_pct);
    report.add("field_hot.unopt_us", unopt_us, "us", iters);
    report.add("field_hot.opt_us", opt_us, "us", iters);
    report.derived("opt_speedup_field_hot", speedup);
    report.derived("opt_insn_reduction_pct", reduction_pct);
  }

  // Compile cost per hot class (fresh slots each round via clone()).
  const int compile_iters = bench::iterations(200, 10);
  const double compile_us = bench::time_us(compile_iters, [&] {
    auto fresh = std::make_shared<ClassDef>();
    fresh->name = "HotCompile";
    fresh->fields = hot->fields;
    for (const auto& m : hot->methods) fresh->methods.push_back(m.clone());
    registry.register_class(fresh);
    for (const auto& m : fresh->methods) {
      (void)minilang::ensure_compiled(registry, *fresh, m);
    }
  });
  std::printf("  %-16s %12.2f us/class (%zu methods)\n", "compile", compile_us,
              hot->methods.size());
  report.add("compile_hot_class_us", compile_us, "us", compile_iters);
  report.write();
}

void BM_SumLoop(benchmark::State& state, ExecMode mode) {
  ClassRegistry registry;
  auto hot = make_hot_class();
  registry.register_class(hot);
  auto self = minilang::instantiate(registry, "Hot");
  InterpOptions options;
  options.exec = mode;
  const std::vector<Value> args = {Value::integer(1000)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        minilang::invoke_method(self, "sumTo", args, true, options));
  }
}
void BM_SumLoopInterp(benchmark::State& state) {
  BM_SumLoop(state, ExecMode::kInterp);
}
void BM_SumLoopBytecode(benchmark::State& state) {
  BM_SumLoop(state, ExecMode::kBytecode);
}
BENCHMARK(BM_SumLoopInterp);
BENCHMARK(BM_SumLoopBytecode);

void BM_FieldChurn(benchmark::State& state, ExecMode mode) {
  ClassRegistry registry;
  auto hot = make_hot_class();
  registry.register_class(hot);
  auto self = minilang::instantiate(registry, "Hot");
  InterpOptions options;
  options.exec = mode;
  const std::vector<Value> args = {Value::integer(3)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        minilang::invoke_method(self, "churn", args, true, options));
  }
}
void BM_FieldChurnInterp(benchmark::State& state) {
  BM_FieldChurn(state, ExecMode::kInterp);
}
void BM_FieldChurnBytecode(benchmark::State& state) {
  BM_FieldChurn(state, ExecMode::kBytecode);
}
BENCHMARK(BM_FieldChurnInterp);
BENCHMARK(BM_FieldChurnBytecode);

}  // namespace

int main(int argc, char** argv) {
  return psf::bench::run(
      argc, argv, "MiniLang: bytecode VM vs tree-walking interpreter",
      reproduce);
}
