// ISSUE 4 satellite: observability overhead. The acceptance bar is that the
// flight-recorder journal adds <= 5% to the secure-RPC hot path; this bench
// measures that directly and writes BENCH_obs_overhead.json so every later
// PR can check the instrumentation has not crept into the fast paths.
//
// "Compiled out" is approximated at runtime by journal::set_enabled(false):
// the real PSF_OBS_NO_JOURNAL compile gate removes the same code that the
// runtime gate short-circuits at its first branch, so the runtime-off number
// is an upper bound on the compiled-out cost. Two things are measured per
// path: the end-to-end operation with the journal on vs off, and the raw
// journal::emit() so the per-event cost is pinned down even though the
// steady-state success paths are edge-triggered (a healthy RPC emits no
// journal event at all — only establish/suspend/teardown/replay-reject do).
#include <algorithm>

#include "bench_util.hpp"
#include "drbac/engine.hpp"
#include "mail/components.hpp"
#include "minilang/interp.hpp"
#include "obs/journal.hpp"
#include "switchboard/channel.hpp"

namespace {

using namespace psf;
using drbac::Principal;
using minilang::Value;
using switchboard::AcceptAllAuthorizer;
using switchboard::AuthorizationSuite;
using switchboard::Connection;
using switchboard::RoleAuthorizer;

// Same secure-channel fixture as bench_switchboard: a credentialed client
// calling the mail service over an established, sealed connection.
struct Fixture {
  util::Rng rng{99};
  std::shared_ptr<util::SimClock> clock = std::make_shared<util::SimClock>();
  switchboard::Network net;
  drbac::Repository repo;
  drbac::Entity guard = drbac::Entity::create("Guard", rng);
  drbac::Entity client = drbac::Entity::create("Client", rng);
  drbac::Entity server = drbac::Entity::create("Server", rng);
  switchboard::Switchboard client_board{"client", &net, clock};
  switchboard::Switchboard server_board{"server", &net, clock};
  minilang::ClassRegistry registry;
  drbac::DelegationPtr client_cred;
  std::shared_ptr<Connection> conn;

  Fixture() {
    net.connect("client", "server", {util::kMillisecond, 0, false});
    mail::register_all(registry);
    auto service = minilang::instantiate(registry, "MailServer");
    service->call("registerAccount",
                  {Value::string("alice"), Value::string("555"),
                   Value::string("a@x")});
    server_board.register_service("mail", service);
    client_cred = drbac::issue(guard, Principal::of_entity(client),
                               drbac::role_of(guard, "Member"), {}, false, 0,
                               0, repo.next_serial());
    repo.add(client_cred);
    AuthorizationSuite server_suite;
    server_suite.identity = server;
    server_suite.authorizer = std::make_shared<RoleAuthorizer>(
        &repo, drbac::role_of(guard, "Member"));
    server_board.set_suite(server_suite);
    AuthorizationSuite suite;
    suite.identity = client;
    suite.credentials = {client_cred};
    suite.authorizer = std::make_shared<AcceptAllAuthorizer>();
    conn = client_board.connect(server_board, suite, rng).value();
  }
};

void reproduce() {
  Fixture f;
  drbac::Engine engine(&f.repo);
  const Principal subject = Principal::of_entity(f.client);
  const drbac::RoleRef goal = drbac::role_of(f.guard, "Member");
  (void)engine.prove(subject, goal, 0);  // warm sig + proof caches

  bench::Report report("obs_overhead");
  const int rpc_iters = bench::iterations(2000);
  const int prove_iters = bench::iterations(20000);
  const int emit_iters = bench::iterations(200000);

  const auto secure_rpc = [&] {
    f.conn->call(Connection::End::kA, "mail", "getPhone",
                 {Value::string("alice")});
  };
  const auto prove_warm = [&] {
    auto proof = engine.prove(subject, goal, 0);
    benchmark::DoNotOptimize(proof);
  };
  const auto emit_one = [] {
    obs::journal::emit(obs::journal::Subsystem::kObs, 99, 1, 2, 3, 4);
  };

  // Alternate on/off passes and keep each configuration's best time: the
  // difference between the two minima isolates the journal from frequency
  // and cache jitter, which at sub-microsecond scale otherwise dwarfs it.
  const auto min_pair = [](int iters, const std::function<void()>& fn) {
    double on = 1e300, off = 1e300;
    for (int pass = 0; pass < (bench::smoke_mode() ? 1 : 3); ++pass) {
      obs::journal::set_enabled(false);
      off = std::min(off, bench::time_us(iters, fn));
      obs::journal::set_enabled(true);
      on = std::min(on, bench::time_us(iters, fn));
    }
    return std::make_pair(on, off);
  };
  const auto [rpc_on_us, rpc_off_us] = min_pair(rpc_iters, secure_rpc);
  const auto [prove_on_us, prove_off_us] = min_pair(prove_iters, prove_warm);
  const auto [emit_on_us, emit_off_us] = min_pair(emit_iters, emit_one);

  report.add("secure_rpc.journal_on", rpc_on_us, "us", rpc_iters);
  report.add("secure_rpc.journal_off", rpc_off_us, "us", rpc_iters);
  report.add("prove_warm.journal_on", prove_on_us, "us", prove_iters);
  report.add("prove_warm.journal_off", prove_off_us, "us", prove_iters);
  report.add("journal_emit.enabled", emit_on_us * 1000.0, "ns", emit_iters);
  report.add("journal_emit.disabled", emit_off_us * 1000.0, "ns", emit_iters);
  const double rpc_pct =
      rpc_off_us > 0 ? (rpc_on_us / rpc_off_us - 1.0) * 100.0 : 0.0;
  const double prove_pct =
      prove_off_us > 0 ? (prove_on_us / prove_off_us - 1.0) * 100.0 : 0.0;
  report.derived("secure_rpc_overhead_pct", rpc_pct);
  report.derived("prove_warm_overhead_pct", prove_pct);
  report.write();

  std::cout << "  secure RPC: journal on " << rpc_on_us << " us, off "
            << rpc_off_us << " us (" << rpc_pct << "% overhead, budget 5%)\n"
            << "  warm prove(): on " << prove_on_us << " us, off "
            << prove_off_us << " us (" << prove_pct << "%)\n"
            << "  raw emit: " << emit_on_us * 1000.0 << " ns enabled, "
            << emit_off_us * 1000.0 << " ns gated off\n"
            << "  journal events recorded so far: " << obs::journal::emitted()
            << " (dropped " << obs::journal::dropped() << ")\n";
}

void BM_SecureRpcJournalOn(benchmark::State& state) {
  static Fixture f;
  obs::journal::set_enabled(true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.conn->call(Connection::End::kA, "mail",
                                          "getPhone",
                                          {Value::string("alice")}));
  }
}
BENCHMARK(BM_SecureRpcJournalOn);

void BM_SecureRpcJournalOff(benchmark::State& state) {
  static Fixture f;
  obs::journal::set_enabled(false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.conn->call(Connection::End::kA, "mail",
                                          "getPhone",
                                          {Value::string("alice")}));
  }
  obs::journal::set_enabled(true);
}
BENCHMARK(BM_SecureRpcJournalOff);

void BM_JournalEmit(benchmark::State& state) {
  obs::journal::set_enabled(true);
  for (auto _ : state) {
    obs::journal::emit(obs::journal::Subsystem::kObs, 99, 1, 2, 3, 4);
  }
}
BENCHMARK(BM_JournalEmit);

void BM_JournalEmitDisabled(benchmark::State& state) {
  obs::journal::set_enabled(false);
  for (auto _ : state) {
    obs::journal::emit(obs::journal::Subsystem::kObs, 99, 1, 2, 3, 4);
  }
  obs::journal::set_enabled(true);
}
BENCHMARK(BM_JournalEmitDisabled);

void BM_JournalDrain(benchmark::State& state) {
  obs::journal::set_enabled(true);
  for (int i = 0; i < 1000; ++i) {
    obs::journal::emit(obs::journal::Subsystem::kObs, 99, 1, 2, 3, 4);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::journal::drain());
  }
}
BENCHMARK(BM_JournalDrain);

}  // namespace

int main(int argc, char** argv) {
  return psf::bench::run(argc, argv,
                         "ISSUE 4: observability overhead on the hot paths",
                         reproduce);
}
