// Claim C2 (paper §3.1): proof-graph construction over the credential
// repository. Sweeps chain depth, distractor volume, and fan-out, and
// ablates discovery-tag-directed search against an exhaustive repository
// scan (DESIGN.md §5).
#include "bench_util.hpp"
#include "drbac/engine.hpp"
#include "util/rng.hpp"

namespace {

using namespace psf;
using drbac::Principal;

// A world with a `depth`-hop grant chain for `user`, buried among
// `distractors` unrelated credentials.
struct GraphWorld {
  util::Rng rng;
  drbac::Repository repo;
  drbac::Entity user;
  std::vector<drbac::Entity> guards;
  drbac::RoleRef goal;

  GraphWorld(int depth, int distractors, std::uint64_t seed = 5)
      : rng(seed), user(drbac::Entity::create("user", rng)) {
    for (int i = 0; i < depth; ++i) {
      guards.push_back(drbac::Entity::create("G" + std::to_string(i), rng));
    }
    repo.add(drbac::issue(guards[0], Principal::of_entity(user),
                          drbac::role_of(guards[0], "r"), {}, false, 0, 0,
                          repo.next_serial()));
    for (int i = 0; i + 1 < depth; ++i) {
      repo.add(drbac::issue(guards[i + 1],
                            Principal::of_role(guards[i], "r"),
                            drbac::role_of(guards[i + 1], "r"), {}, false, 0,
                            0, repo.next_serial()));
    }
    goal = drbac::role_of(guards[depth - 1], "r");

    // Distractors: unrelated principals with unrelated roles.
    drbac::Entity other = drbac::Entity::create("other-domain", rng);
    for (int i = 0; i < distractors; ++i) {
      drbac::Entity nobody =
          drbac::Entity::create("nobody" + std::to_string(i), rng);
      repo.add(drbac::issue(other, Principal::of_entity(nobody),
                            drbac::role_of(other, "noise" + std::to_string(i % 50)),
                            {}, false, 0, 0, repo.next_serial()));
    }
  }
};

void reproduce() {
  std::cout << "  proof construction: chain depth sweep (distractors=1000)\n";
  std::cout << "  depth   chain-found   credentials-in-proof\n";
  for (int depth : {1, 2, 4, 8, 12}) {
    GraphWorld world(depth, 1000);
    drbac::Engine engine(&world.repo);
    auto proof = engine.prove(Principal::of_entity(world.user), world.goal, 0);
    std::cout << "  " << depth << "\t" << (proof.ok() ? "yes" : "NO") << "\t\t"
              << (proof.ok() ? proof.value().credentials.size() : 0) << "\n";
  }
  std::cout << "  shape: cost tracks chain depth, not repository size —\n"
            << "  the discovery-tag indexes keep search directed.\n";
}

void BM_ProveByChainDepth(benchmark::State& state) {
  GraphWorld world(static_cast<int>(state.range(0)), 1000);
  drbac::Engine engine(&world.repo);
  for (auto _ : state) {
    auto proof = engine.prove(Principal::of_entity(world.user), world.goal, 0);
    benchmark::DoNotOptimize(proof);
  }
}
BENCHMARK(BM_ProveByChainDepth)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(12);

void BM_ProveByRepositorySize(benchmark::State& state) {
  GraphWorld world(4, static_cast<int>(state.range(0)));
  drbac::Engine engine(&world.repo);
  for (auto _ : state) {
    auto proof = engine.prove(Principal::of_entity(world.user), world.goal, 0);
    benchmark::DoNotOptimize(proof);
  }
}
BENCHMARK(BM_ProveByRepositorySize)->Arg(0)->Arg(100)->Arg(1000)->Arg(10000);

void BM_ProveDirectedVsExhaustive(benchmark::State& state) {
  // Ablation: discovery tags on (directed index query) vs off (full scan).
  GraphWorld world(4, static_cast<int>(state.range(0)));
  drbac::Engine engine(&world.repo);
  drbac::ProveOptions options;
  options.use_discovery_tags = state.range(1) == 1;
  for (auto _ : state) {
    auto proof = engine.prove(Principal::of_entity(world.user), world.goal, 0,
                              options);
    benchmark::DoNotOptimize(proof);
  }
}
BENCHMARK(BM_ProveDirectedVsExhaustive)
    ->Args({1000, 1})   // tags on
    ->Args({1000, 0})   // exhaustive scan
    ->Args({10000, 1})
    ->Args({10000, 0});

void BM_FailingProofIsBounded(benchmark::State& state) {
  // Asking for an ungranted role must terminate quickly (memoized failure).
  GraphWorld world(4, 1000);
  drbac::Engine engine(&world.repo);
  drbac::Entity stranger = drbac::Entity::create("stranger", world.rng);
  for (auto _ : state) {
    auto proof =
        engine.prove(Principal::of_entity(stranger), world.goal, 0);
    benchmark::DoNotOptimize(proof);
  }
}
BENCHMARK(BM_FailingProofIsBounded);

}  // namespace

int main(int argc, char** argv) {
  return psf::bench::run(argc, argv,
                         "Claim C2: proof-graph construction scaling",
                         reproduce);
}
