// Claim C2 (paper §3.1): proof-graph construction over the credential
// repository. Sweeps chain depth, distractor volume, and fan-out, and
// ablates discovery-tag-directed search against an exhaustive repository
// scan (DESIGN.md §5).
//
// Fast-path trajectory (ISSUE 2): measures cold vs. warm prove() through
// the SignatureCache + ProofCache layers — on a synthetic depth-4 graph and
// on the Table-2 guard scenario — and writes BENCH_proof_engine.json
// (schema documented in EXPERIMENTS.md).
#include "bench_util.hpp"
#include "drbac/engine.hpp"
#include "drbac/proof_cache.hpp"
#include "mail/scenario.hpp"
#include "util/rng.hpp"

namespace {

using namespace psf;
using drbac::Principal;

// Raw-search options: every cache layer off. The C2 sweeps measure the
// graph search itself; the fast-path measurements below layer the caches
// back on.
drbac::ProveOptions uncached_options() {
  drbac::ProveOptions options;
  options.use_proof_cache = false;
  options.use_signature_cache = false;
  options.parallel_verify = false;
  return options;
}

void clear_caches(const drbac::Repository& repo) {
  repo.proof_cache().clear();
  drbac::SignatureCache::instance().clear();
}

// A world with a `depth`-hop grant chain for `user`, buried among
// `distractors` unrelated credentials.
struct GraphWorld {
  util::Rng rng;
  drbac::Repository repo;
  drbac::Entity user;
  std::vector<drbac::Entity> guards;
  drbac::RoleRef goal;

  GraphWorld(int depth, int distractors, std::uint64_t seed = 5)
      : rng(seed), user(drbac::Entity::create("user", rng)) {
    for (int i = 0; i < depth; ++i) {
      guards.push_back(drbac::Entity::create("G" + std::to_string(i), rng));
    }
    repo.add(drbac::issue(guards[0], Principal::of_entity(user),
                          drbac::role_of(guards[0], "r"), {}, false, 0, 0,
                          repo.next_serial()));
    for (int i = 0; i + 1 < depth; ++i) {
      repo.add(drbac::issue(guards[i + 1],
                            Principal::of_role(guards[i], "r"),
                            drbac::role_of(guards[i + 1], "r"), {}, false, 0,
                            0, repo.next_serial()));
    }
    goal = drbac::role_of(guards[depth - 1], "r");

    // Distractors: unrelated principals with unrelated roles.
    drbac::Entity other = drbac::Entity::create("other-domain", rng);
    for (int i = 0; i < distractors; ++i) {
      drbac::Entity nobody =
          drbac::Entity::create("nobody" + std::to_string(i), rng);
      repo.add(drbac::issue(other, Principal::of_entity(nobody),
                            drbac::role_of(other, "noise" + std::to_string(i % 50)),
                            {}, false, 0, 0, repo.next_serial()));
    }
  }
};

void reproduce() {
  std::cout << "  proof construction: chain depth sweep (distractors=1000)\n";
  std::cout << "  depth   chain-found   credentials-in-proof\n";
  for (int depth : {1, 2, 4, 8, 12}) {
    GraphWorld world(depth, 1000);
    drbac::Engine engine(&world.repo);
    auto proof = engine.prove(Principal::of_entity(world.user), world.goal, 0);
    std::cout << "  " << depth << "\t" << (proof.ok() ? "yes" : "NO") << "\t\t"
              << (proof.ok() ? proof.value().credentials.size() : 0) << "\n";
  }
  std::cout << "  shape: cost tracks chain depth, not repository size —\n"
            << "  the discovery-tag indexes keep search directed.\n";

  // ---- Fast-path trajectory: BENCH_proof_engine.json ----
  bench::Report report("proof_engine");

  {
    GraphWorld world(4, 1000);
    drbac::Engine engine(&world.repo);
    const Principal subject = Principal::of_entity(world.user);

    const int cold_iters = bench::iterations(20);
    const double cold_serial_us = bench::time_us(cold_iters, [&] {
      clear_caches(world.repo);
      drbac::ProveOptions options;
      options.parallel_verify = false;
      auto proof = engine.prove(subject, world.goal, 0, options);
      benchmark::DoNotOptimize(proof);
    });
    const double cold_parallel_us = bench::time_us(cold_iters, [&] {
      clear_caches(world.repo);
      auto proof = engine.prove(subject, world.goal, 0);
      benchmark::DoNotOptimize(proof);
    });

    clear_caches(world.repo);
    (void)engine.prove(subject, world.goal, 0);  // warm both caches
    const int warm_iters = bench::iterations(2000, 20);
    const double warm_us = bench::time_us(warm_iters, [&] {
      auto proof = engine.prove(subject, world.goal, 0);
      benchmark::DoNotOptimize(proof);
    });

    // Signature cache only: the search runs every time, signatures are warm.
    drbac::ProveOptions sig_only;
    sig_only.use_proof_cache = false;
    const double sig_only_us = bench::time_us(bench::iterations(200, 5), [&] {
      auto proof = engine.prove(subject, world.goal, 0, sig_only);
      benchmark::DoNotOptimize(proof);
    });

    report.add("graph_d4.prove.cold_serial_us", cold_serial_us, "us",
               cold_iters);
    report.add("graph_d4.prove.cold_parallel_us", cold_parallel_us, "us",
               cold_iters);
    report.add("graph_d4.prove.sigcache_only_us", sig_only_us, "us",
               bench::iterations(200, 5));
    report.add("graph_d4.prove.warm_us", warm_us, "us", warm_iters);
    report.derived("graph_d4.warm_speedup",
                   warm_us > 0 ? cold_serial_us / warm_us : 0.0);
    report.derived("graph_d4.parallel_cold_speedup",
                   cold_parallel_us > 0 ? cold_serial_us / cold_parallel_us
                                        : 0.0);

    std::cout << "\n  fast path (depth-4 chain, 1000 distractors):\n"
              << "    cold serial   " << cold_serial_us << " us\n"
              << "    cold parallel " << cold_parallel_us << " us\n"
              << "    sigcache only " << sig_only_us << " us\n"
              << "    warm          " << warm_us << " us  ("
              << (warm_us > 0 ? cold_serial_us / warm_us : 0.0)
              << "x vs cold)\n";
  }

  // Table-2 guard scenario (the acceptance target): Bob's client
  // authorization, cold vs. warm, over the real 17-credential mail world.
  {
    mail::Scenario scenario = mail::build_scenario();
    drbac::Repository& repo = scenario.psf->repository();
    drbac::Engine engine(&repo);
    const Principal bob = Principal::of_entity(scenario.bob);
    const drbac::RoleRef member = scenario.ny->role("Member");

    const int cold_iters = bench::iterations(20);
    const double cold_us = bench::time_us(cold_iters, [&] {
      clear_caches(repo);
      drbac::ProveOptions options;
      options.parallel_verify = false;
      auto proof = engine.prove(bob, member, 0, options);
      benchmark::DoNotOptimize(proof);
    });

    clear_caches(repo);
    (void)engine.prove(bob, member, 0);
    const int warm_iters = bench::iterations(2000, 20);
    const double warm_us = bench::time_us(warm_iters, [&] {
      auto proof = engine.prove(bob, member, 0);
      benchmark::DoNotOptimize(proof);
    });

    report.add("table2_client.prove.cold_us", cold_us, "us", cold_iters);
    report.add("table2_client.prove.warm_us", warm_us, "us", warm_iters);
    report.derived("table2_client.warm_speedup",
                   warm_us > 0 ? cold_us / warm_us : 0.0);

    std::cout << "  fast path (Table-2 guard scenario, Bob -> Comp.NY.Member):\n"
              << "    cold " << cold_us << " us, warm " << warm_us << " us  ("
              << (warm_us > 0 ? cold_us / warm_us : 0.0) << "x)\n";
  }

  report.write();
}

// The C2 sweeps below run with every cache off: they measure the raw graph
// search (the paper's §3.1 shape claims). The *Warm/Parallel benchmarks
// measure the fast path.

void BM_ProveByChainDepth(benchmark::State& state) {
  GraphWorld world(static_cast<int>(state.range(0)), 1000);
  drbac::Engine engine(&world.repo);
  for (auto _ : state) {
    auto proof = engine.prove(Principal::of_entity(world.user), world.goal, 0,
                              uncached_options());
    benchmark::DoNotOptimize(proof);
  }
}
BENCHMARK(BM_ProveByChainDepth)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(12);

void BM_ProveByRepositorySize(benchmark::State& state) {
  GraphWorld world(4, static_cast<int>(state.range(0)));
  drbac::Engine engine(&world.repo);
  for (auto _ : state) {
    auto proof = engine.prove(Principal::of_entity(world.user), world.goal, 0,
                              uncached_options());
    benchmark::DoNotOptimize(proof);
  }
}
BENCHMARK(BM_ProveByRepositorySize)->Arg(0)->Arg(100)->Arg(1000)->Arg(10000);

void BM_ProveDirectedVsExhaustive(benchmark::State& state) {
  // Ablation: discovery tags on (directed index query) vs off (full scan).
  GraphWorld world(4, static_cast<int>(state.range(0)));
  drbac::Engine engine(&world.repo);
  drbac::ProveOptions options = uncached_options();
  options.use_discovery_tags = state.range(1) == 1;
  for (auto _ : state) {
    auto proof = engine.prove(Principal::of_entity(world.user), world.goal, 0,
                              options);
    benchmark::DoNotOptimize(proof);
  }
}
BENCHMARK(BM_ProveDirectedVsExhaustive)
    ->Args({1000, 1})   // tags on
    ->Args({1000, 0})   // exhaustive scan
    ->Args({10000, 1})
    ->Args({10000, 0});

void BM_FailingProofIsBounded(benchmark::State& state) {
  // Asking for an ungranted role must terminate quickly (memoized failure).
  GraphWorld world(4, 1000);
  drbac::Engine engine(&world.repo);
  drbac::Entity stranger = drbac::Entity::create("stranger", world.rng);
  for (auto _ : state) {
    auto proof = engine.prove(Principal::of_entity(stranger), world.goal, 0,
                              uncached_options());
    benchmark::DoNotOptimize(proof);
  }
}
BENCHMARK(BM_FailingProofIsBounded);

void BM_ProveWarm(benchmark::State& state) {
  // Steady state of the fast path: every iteration is a ProofCache hit.
  GraphWorld world(4, 1000);
  drbac::Engine engine(&world.repo);
  const Principal subject = Principal::of_entity(world.user);
  (void)engine.prove(subject, world.goal, 0);
  for (auto _ : state) {
    auto proof = engine.prove(subject, world.goal, 0);
    benchmark::DoNotOptimize(proof);
  }
}
BENCHMARK(BM_ProveWarm);

void BM_ProveColdParallelVerify(benchmark::State& state) {
  // Cold proofs with (1) or without (0) the parallel signature prewarm.
  GraphWorld world(8, 1000);
  drbac::Engine engine(&world.repo);
  const Principal subject = Principal::of_entity(world.user);
  drbac::ProveOptions options;
  options.parallel_verify = state.range(0) == 1;
  for (auto _ : state) {
    clear_caches(world.repo);
    auto proof = engine.prove(subject, world.goal, 0, options);
    benchmark::DoNotOptimize(proof);
  }
}
BENCHMARK(BM_ProveColdParallelVerify)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  return psf::bench::run(argc, argv,
                         "Claim C2: proof-graph construction scaling",
                         reproduce);
}
