// Table 4 reproduction: the access rules restricting client access to the
// mail service (role -> view), evaluated for each of the paper's users, and
// the *single sign-on* claim of §4.2: once a view is instantiated over an
// established Switchboard channel, requests proceed without additional
// access checks. Timed comparison:
//   - SSO path: call through the view (channel established once);
//   - baseline: re-prove the client's role on every request (per-request
//     ACL check, what a view-less gateway would do).
#include "bench_util.hpp"
#include "drbac/engine.hpp"
#include "mail/scenario.hpp"

namespace {

using namespace psf;
using drbac::Principal;
using mail::Scenario;
using minilang::Value;

struct Fixture {
  Scenario s = mail::build_scenario();
  framework::ClientSession charlie_session;

  Fixture() {
    auto session =
        s.psf->request(s.request_for(s.charlie, Scenario::kSePc));
    charlie_session = std::move(session).take();
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void reproduce() {
  Fixture& f = fixture();
  std::cout << "  Role                 View name\n";
  for (const auto& [role, view] : f.s.ny->access_rules()) {
    std::cout << "  Comp.NY." << role << "\t" << view << "\n";
  }
  std::cout << "  others       \tViewMailClient_Anonymous\n\n";

  struct UserRow {
    const char* who;
    const drbac::Entity* entity;
  };
  const UserRow rows[] = {{"Alice", &f.s.alice},
                          {"Bob", &f.s.bob},
                          {"Charlie", &f.s.charlie}};
  for (const auto& row : rows) {
    auto decision = f.s.ny->select_view(Principal::of_entity(*row.entity), 0);
    std::cout << "  " << row.who << " -> " << decision.value().view_name
              << "  (matched role: "
              << (decision.value().matched_role.empty()
                      ? "none (default)"
                      : decision.value().matched_role)
              << ")\n";
  }
  drbac::Entity eve = drbac::Entity::create("Eve", f.s.psf->rng());
  auto anon = f.s.ny->select_view(Principal::of_entity(eve), 0);
  std::cout << "  Eve (no credentials) -> " << anon.value().view_name << "\n";
}

void BM_SingleSignOnCall(benchmark::State& state) {
  // The paper's SSO path: authorization happened at view instantiation;
  // each call is just an (encrypted) request through the channel.
  Fixture& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.charlie_session.view->call("getPhone", {Value::string("alice")}));
  }
}
BENCHMARK(BM_SingleSignOnCall);

void BM_PerRequestAclBaseline(benchmark::State& state) {
  // Baseline: an ACL check (full dRBAC proof) before every request.
  Fixture& f = fixture();
  drbac::Engine engine(&f.s.psf->repository());
  for (auto _ : state) {
    auto proof = engine.prove(Principal::of_entity(f.s.charlie),
                              f.s.ny->role("Partner"), 0);
    benchmark::DoNotOptimize(proof);
    benchmark::DoNotOptimize(
        f.charlie_session.view->call("getPhone", {Value::string("alice")}));
  }
}
BENCHMARK(BM_PerRequestAclBaseline);

void BM_AclSelectView(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    auto decision =
        f.s.ny->select_view(Principal::of_entity(f.s.charlie), 0);
    benchmark::DoNotOptimize(decision);
  }
}
BENCHMARK(BM_AclSelectView);

void BM_AclSelectViewCached(benchmark::State& state) {
  // Guard decision cache (invalidated on revocation): the amortized
  // single-sign-on lookup.
  static Scenario cached_world = mail::build_scenario();
  cached_world.ny->enable_decision_cache();
  (void)cached_world.ny->select_view(
      Principal::of_entity(cached_world.charlie), 0);
  for (auto _ : state) {
    auto decision = cached_world.ny->select_view(
        Principal::of_entity(cached_world.charlie), 0);
    benchmark::DoNotOptimize(decision);
  }
}
BENCHMARK(BM_AclSelectViewCached);

void BM_LocalViewMethodCall(benchmark::State& state) {
  // Fine-grained access control at zero marginal cost: a local method on
  // the restricted view (receiveMessages drains, so state stays bounded).
  Fixture& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.charlie_session.view->call("receiveMessages", {}));
  }
}
BENCHMARK(BM_LocalViewMethodCall);

}  // namespace

int main(int argc, char** argv) {
  return psf::bench::run(
      argc, argv,
      "Table 4: access rules and single sign-on vs per-request checks",
      reproduce);
}
