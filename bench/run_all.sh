#!/usr/bin/env bash
# Run every benchmark binary — and only binaries — collecting stdout and the
# BENCH_*.json snapshots into one output directory.
#
# The old EXPERIMENTS.md one-liner (`for b in build/bench/*; do $b; done`)
# also "executed" CMakeLists.txt, CMakeFiles/, and any stray generator
# artifact living in the bench build dir; this script filters to executable
# regular files named bench_* and skips known non-binary extensions.
#
# Usage: bench/run_all.sh [build-dir] [out-dir]
#   build-dir  defaults to "build"
#   out-dir    defaults to "bench_out"; receives <bench>.txt logs and
#              BENCH_*.json (via PSF_BENCH_JSON_DIR)
# Environment: PSF_BENCH_SMOKE=1 propagates to the binaries (reduced
# iterations, google-benchmark skipped) for a quick CI pass.
set -euo pipefail

build_dir="${1:-build}"
out_dir="${2:-bench_out}"

if [ ! -d "$build_dir/bench" ]; then
  echo "error: $build_dir/bench not found (configure + build first)" >&2
  exit 2
fi

mkdir -p "$out_dir"
export PSF_BENCH_JSON_DIR="$out_dir"

status=0
ran=0
for b in "$build_dir"/bench/bench_*; do
  name="$(basename "$b")"
  # Only executable regular files; some generators drop CMake artifacts,
  # object dirs, or response files next to the binaries.
  [ -f "$b" ] && [ -x "$b" ] || continue
  case "$name" in
    *.cmake|*.txt|*.json|*.ninja|*.o|*.d) continue ;;
  esac
  echo "== $name =="
  if "$b" >"$out_dir/$name.txt" 2>&1; then
    ran=$((ran + 1))
  else
    echo "   FAILED (see $out_dir/$name.txt)" >&2
    status=1
  fi
done

if [ "$ran" -eq 0 ]; then
  echo "error: no bench binaries found under $build_dir/bench" >&2
  exit 2
fi

echo "ran $ran bench binaries; logs and BENCH_*.json in $out_dir/"
exit $status
