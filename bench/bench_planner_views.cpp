// Claim C4 (paper §4.2): "views increase the likelihood of the planner
// finding a component deployment in constrained environments."
// Reproduction: random three-tier topologies with varying WAN bandwidth and
// link security; for each constraint level, measure deployment success rate
// with views enabled vs disabled (origin-only). The crossover the paper
// implies: once QoS exceeds what the WAN can carry, only view-based plans
// succeed. Timings cover planner latency vs node count.
#include <iomanip>

#include "bench_util.hpp"
#include "psf/framework.hpp"
#include "psf/planner.hpp"
#include "util/rng.hpp"

namespace {

using namespace psf;
using drbac::Attribute;
using drbac::Principal;
using framework::PlannerOptions;
using framework::PlanProblem;
using switchboard::LinkProps;
using util::kMillisecond;

// Random world: one origin site + `sites` branch sites, each with a couple
// of client nodes; WAN links with randomized bandwidth/security; node trust
// assigned randomly (some sites fail the application policy).
struct RandomWorld {
  framework::Psf psf;
  framework::Guard* home;
  framework::Guard* app;
  drbac::Entity replica_code;
  drbac::Entity view_code;
  drbac::Entity cipher_code;
  std::vector<std::string> client_nodes;

  RandomWorld(int sites, std::uint64_t seed, double trusted_fraction,
              std::int64_t wan_kbps)
      : psf(seed) {
    home = &psf.create_guard("Home");
    app = &psf.create_guard("App");
    psf.add_node("origin", "Home", 500);
    home->grant(psf.node("origin")->principal(), "PC");
    app->issue(Principal::of_role(home->entity(), "PC"), app->role("Node"),
               {{"Secure", Attribute::make_set("Secure", {"true", "false"})},
                {"Trust", Attribute::make_range("Trust", 0, 10)}});

    replica_code = home->create_principal("app.Replica");
    view_code = home->create_principal("app.View");
    cipher_code = home->create_principal("app.Cipher");
    for (const auto* code : {&replica_code, &view_code, &cipher_code}) {
      home->grant(Principal::of_entity(*code), "Executable",
                  {{"CPU", Attribute::make_cap("CPU", 100)}});
    }

    util::Rng rng(seed * 31 + 7);
    for (int s = 0; s < sites; ++s) {
      const std::string domain = "Site" + std::to_string(s);
      framework::Guard& site = psf.create_guard(domain);
      // Cross-domain component acceptance (like Table 2's (14)/(17)).
      site.issue(Principal::of_role(home->entity(), "Executable"),
                 site.role("Executable"),
                 {{"CPU", Attribute::make_cap("CPU", 80)}});
      const bool trusted = rng.next_double() < trusted_fraction;
      const std::string gateway = domain + "-gw";
      psf.add_node(gateway, domain, 200);
      site.grant(psf.node(gateway)->principal(), "PC");
      app->issue(
          Principal::of_role(site.entity(), "PC"), app->role("Node"),
          {{"Secure", Attribute::make_set(
                          "Secure", trusted
                                        ? std::set<std::string>{"true", "false"}
                                        : std::set<std::string>{"false"})},
           {"Trust", Attribute::make_range("Trust", 0, trusted ? 9 : 2)}});
      psf.connect("origin", gateway,
                  LinkProps{(20 + static_cast<std::int64_t>(
                                      rng.next_below(60))) *
                                kMillisecond,
                            wan_kbps, false});
      for (int c = 0; c < 2; ++c) {
        const std::string client =
            domain + "-pc" + std::to_string(c);
        psf.add_node(client, domain, 100);
        site.grant(psf.node(client)->principal(), "PC");
        psf.connect(gateway, client, LinkProps{kMillisecond, 100'000, true});
        client_nodes.push_back(client);
      }
    }
  }

  PlanProblem problem_for(const std::string& client,
                          std::int64_t min_bandwidth, bool privacy) {
    PlanProblem p;
    p.client_node = client;
    p.origin_node = "origin";
    p.client_view = "ClientView";
    p.replica_view = "ReplicaView";
    p.qos.min_bandwidth_kbps = min_bandwidth;
    p.qos.privacy = privacy;
    p.node_policy_role = app->role("Node");
    p.node_policy_attrs = {
        {"Secure", Attribute::make_set("Secure", {"true"})},
        {"Trust", Attribute::make_range("Trust", 5, 5)}};
    p.replica_component = Principal::of_entity(replica_code);
    p.view_component = Principal::of_entity(view_code);
    p.cipher_component = Principal::of_entity(cipher_code);
    return p;
  }
};

void reproduce() {
  std::cout << "  deployment success rate over random topologies\n"
            << "  (10 worlds x 8 sites, 60% trusted; WAN = 200 kbps)\n\n"
            << "  required-bw(kbps)   with-views   without-views\n";
  for (std::int64_t bw : {0L, 100L, 500L, 1000L, 5000L}) {
    int ok_with = 0, ok_without = 0, total = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      RandomWorld world(8, seed, 0.6, 200);
      framework::Planner planner(&world.psf.network(),
                                 &world.psf.repository());
      for (const auto& client : world.client_nodes) {
        auto problem = world.problem_for(client, bw, false);
        PlannerOptions with;
        PlannerOptions without;
        without.use_views = false;
        ++total;
        if (planner.plan(problem, world.psf.node_infos(), 0, with).ok()) {
          ++ok_with;
        }
        if (planner.plan(problem, world.psf.node_infos(), 0, without).ok()) {
          ++ok_without;
        }
      }
    }
    std::cout << "  " << std::setw(12) << bw << std::setw(12)
              << std::fixed << std::setprecision(0)
              << 100.0 * ok_with / total << "%" << std::setw(14)
              << 100.0 * ok_without / total << "%\n";
  }
  std::cout << "\n  shape: identical at loose QoS; once the requirement\n"
            << "  exceeds WAN capacity, origin-only plans collapse to 0%\n"
            << "  while view-based plans keep succeeding on trusted sites\n"
            << "  (paper Sec. 4.2).\n";
}

void BM_PlanByNodeCount(benchmark::State& state) {
  RandomWorld world(static_cast<int>(state.range(0)), 3, 0.6, 200);
  framework::Planner planner(&world.psf.network(), &world.psf.repository());
  auto problem = world.problem_for(world.client_nodes.front(), 1000, true);
  for (auto _ : state) {
    auto plan = planner.plan(problem, world.psf.node_infos(), 0);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_PlanByNodeCount)->Arg(2)->Arg(8)->Arg(32);

void BM_PlanLooseVsTightQos(benchmark::State& state) {
  RandomWorld world(8, 3, 0.6, 200);
  framework::Planner planner(&world.psf.network(), &world.psf.repository());
  auto problem = world.problem_for(world.client_nodes.front(),
                                   state.range(0), state.range(1) == 1);
  for (auto _ : state) {
    auto plan = planner.plan(problem, world.psf.node_infos(), 0);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_PlanLooseVsTightQos)
    ->Args({0, 0})      // best effort
    ->Args({1000, 0})   // bandwidth-constrained
    ->Args({1000, 1});  // + privacy

}  // namespace

int main(int argc, char** argv) {
  return psf::bench::run(
      argc, argv,
      "Claim C4: deployment success with vs without views", reproduce);
}
