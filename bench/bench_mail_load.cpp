// ISSUE 6 tentpole, part 5: the mail load ramp. Simulated mail clients ramp
// from 1k to 10k+ (more in full mode), driven by a small pool of worker
// threads, each owning a complete share-nothing fixture (its own Network,
// Switchboards, repository, and sealed connection) so the only cross-thread
// state is the observability plane itself — which is exactly what this bench
// is about. Per ramp step it reports p50/p99 secure-RPC latency (from
// psf.switchboard.rpc_us bucket deltas) and sustained RPS, then:
//
//  - re-arms the rpc histogram's exemplar threshold at the warmup step's
//    observed p90 (adaptive: the tail is defined by this machine's real
//    latency, not a hardcoded guess) and asserts a captured exemplar still
//    resolves to spans via SpanCollector::spans_for_trace;
//  - sizes the journal overflow ring ahead of each step from the projected
//    event burst (adaptive ring), drains between steps like a scraping
//    collector, and asserts the soft/hard split shows zero hard drops;
//  - measures the §4f observability-overhead gate AT LOAD: alternating
//    min-of-N passes with the full load plane (journal + per-request events
//    + exemplars + contention profiling) on vs off, and exits nonzero if
//    the overhead exceeds 5%.
//
// Writes BENCH_mail_load.json (psf-bench-v1).
#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <future>

#include "bench_util.hpp"
#include "mail/components.hpp"
#include "mail/sharded.hpp"
#include "minilang/interp.hpp"
#include "minilang/value_codec.hpp"
#include "obs/contention.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "switchboard/channel.hpp"
#include "switchboard/event_loop.hpp"
#include "switchboard/reactor.hpp"

namespace {

using namespace psf;
using drbac::Principal;
using minilang::Value;
using switchboard::AcceptAllAuthorizer;
using switchboard::AuthorizationSuite;
using switchboard::Connection;
using switchboard::RoleAuthorizer;

// One mail client's worth of framework: the same secure-channel fixture as
// bench_obs_overhead, but constructed per worker thread so the workers share
// nothing except the process-wide observability plane.
struct WorkerFixture {
  explicit WorkerFixture(unsigned seed) : rng(seed) {
    net.connect("client", "server", {util::kMillisecond, 0, false});
    mail::register_all(registry);
    auto service = minilang::instantiate(registry, "MailServer");
    service->call("registerAccount",
                  {Value::string("alice"), Value::string("555"),
                   Value::string("a@x")});
    server_board.register_service("mail", service);
    client_cred = drbac::issue(guard, Principal::of_entity(client),
                               drbac::role_of(guard, "Member"), {}, false, 0,
                               0, repo.next_serial());
    repo.add(client_cred);
    AuthorizationSuite server_suite;
    server_suite.identity = server;
    server_suite.authorizer = std::make_shared<RoleAuthorizer>(
        &repo, drbac::role_of(guard, "Member"));
    server_board.set_suite(server_suite);
    AuthorizationSuite suite;
    suite.identity = client;
    suite.credentials = {client_cred};
    suite.authorizer = std::make_shared<AcceptAllAuthorizer>();
    conn = client_board.connect(server_board, suite, rng).value();
  }

  // One logical client request. `chatty` adds the per-request journal event
  // a debug-verbosity deployment would emit — the burst volume the overflow
  // ring has to absorb during the ramp. The product's own journaling is
  // edge-triggered (healthy RPCs emit nothing), which is what the overhead
  // gate measures.
  void one_request(std::int64_t worker, std::int64_t i, bool chatty) {
    conn->call(Connection::End::kA, "mail", "getPhone",
               {Value::string("alice")});
    if (chatty) {
      obs::journal::emit(obs::journal::Subsystem::kObs, 97, worker, i, 0, 0);
    }
  }

  util::Rng rng;
  std::shared_ptr<util::SimClock> clock = std::make_shared<util::SimClock>();
  switchboard::Network net;
  drbac::Repository repo;
  drbac::Entity guard = drbac::Entity::create("Guard", rng);
  drbac::Entity client = drbac::Entity::create("Client", rng);
  drbac::Entity server = drbac::Entity::create("Server", rng);
  switchboard::Switchboard client_board{"client", &net, clock};
  switchboard::Switchboard server_board{"server", &net, clock};
  minilang::ClassRegistry registry;
  drbac::DelegationPtr client_cred;
  std::shared_ptr<Connection> conn;
};

int worker_count() {
  const unsigned hc = std::thread::hardware_concurrency();
  return static_cast<int>(std::min(4u, std::max(2u, hc)));
}

/// Drives `total_requests` across the workers (fresh threads per call, so
/// each burst starts with empty per-thread journal rings) and returns the
/// wall-clock seconds for the whole burst.
double run_loaded(std::vector<std::unique_ptr<WorkerFixture>>& workers,
                  long total_requests, bool chatty) {
  const long per_worker =
      (total_requests + static_cast<long>(workers.size()) - 1) /
      static_cast<long>(workers.size());
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(workers.size());
  for (std::size_t w = 0; w < workers.size(); ++w) {
    threads.emplace_back([&fixture = *workers[w], w, per_worker, chatty] {
      for (long i = 0; i < per_worker; ++i) {
        fixture.one_request(static_cast<std::int64_t>(w), i, chatty);
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
      .count();
}

/// Percentile of only the observations between two snapshots of the same
/// histogram: subtract the bucket counts and reuse Snapshot::percentile.
std::int64_t delta_percentile(const obs::Histogram::Snapshot& before,
                              const obs::Histogram::Snapshot& after,
                              double p) {
  obs::Histogram::Snapshot delta = after;
  delta.count = after.count - before.count;
  for (std::size_t i = 0; i < delta.bucket_counts.size(); ++i) {
    delta.bucket_counts[i] -= before.bucket_counts[i];
  }
  return delta.percentile(p);
}

// Set when the reproduction phase fails one of its asserted gates; main()
// turns it into a nonzero exit so CI smoke catches a regression even though
// bench::run itself returned 0.
int g_gate_failures = 0;

// ----------------------------------------------------------------------
// ISSUE 7: the event-core ramp. The thread-per-connection ramp above tops
// out where threads do; this section drives the same mail workload through
// the readiness-driven Reactor — derived sessions multiplexed over one
// trunk Connection per worker, mail state sharded by mailbox hash — and
// ramps client count to 100k while OS thread count stays O(workers).

// One in-flight request per driver chain (strict closed loop). Each worker
// loop is single-threaded, so one busy chain per worker already saturates
// it; a deeper window adds pure queueing delay (latency = K x service time
// by Little's law) without adding throughput on in-process conduits. K=1
// keeps p99 an honest per-request service latency, comparable to the
// thread-per-connection ramp above.
constexpr int kInflightWindow = 1;

/// One worker's closed-loop driver: completions issue the next request
/// until the step quota is spent. Callbacks run on the worker's loop.
struct Drive {
  std::vector<switchboard::EventChannel*> channels;
  std::vector<util::Bytes> requests;  // pre-encoded getPhone per channel
  std::atomic<long> to_issue{0};
  std::atomic<long> completed{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::size_t> rr{0};
  long total = 0;
  std::int64_t worker = 0;
  bool chatty = false;  // per-request journal emit, as in one_request()
  std::promise<void> done;
};

void issue_next(const std::shared_ptr<Drive>& drive, obs::Histogram& rpc_us) {
  if (drive->to_issue.fetch_sub(1) <= 0) return;
  const std::size_t idx =
      drive->rr.fetch_add(1) % drive->channels.size();
  const std::uint64_t start = switchboard::EventLoop::now_ns();
  drive->channels[idx]->submit(
      drive->requests[idx],
      [drive, start, &rpc_us](util::Result<util::Bytes> r) {
        {
          // Observe inside a live span so a tail capture carries a
          // resolvable trace — the same exemplar discipline as the
          // thread-per-connection path's ScopedTimerUs-inside-ScopedSpan.
          obs::ScopedSpan span("switchboard.call");
          rpc_us.observe(static_cast<std::int64_t>(
              (switchboard::EventLoop::now_ns() - start) / 1000));
        }
        if (!r.ok()) drive->errors.fetch_add(1);
        const long finished = drive->completed.fetch_add(1) + 1;
        if (drive->chatty) {
          // The debug-verbosity per-request journal event the old-core ramp
          // emits too: this is the burst the overflow ring must absorb, and
          // what makes the zero-hard-drop gate meaningful at 100k sessions.
          obs::journal::emit(obs::journal::Subsystem::kObs, 97, drive->worker,
                             finished, 0, 0);
        }
        if (finished == drive->total) {
          drive->done.set_value();
        } else {
          issue_next(drive, rpc_us);
        }
      });
}

/// Drive `total_requests` across the per-worker chains; returns wall-clock
/// seconds. Requests are spread proportionally to each worker's session
/// count so every shard stays busy.
double run_event_loaded(
    std::vector<std::vector<switchboard::EventChannel*>>& by_worker,
    std::vector<std::vector<util::Bytes>>& requests_by_worker,
    long total_requests, obs::Histogram& rpc_us, bool chatty = false) {
  std::size_t total_channels = 0;
  for (const auto& channels : by_worker) total_channels += channels.size();
  std::vector<std::shared_ptr<Drive>> drives;
  long assigned = 0;
  for (std::size_t w = 0; w < by_worker.size(); ++w) {
    if (by_worker[w].empty()) continue;
    auto drive = std::make_shared<Drive>();
    drive->channels = by_worker[w];
    drive->requests = requests_by_worker[w];
    drive->worker = static_cast<std::int64_t>(w);
    drive->chatty = chatty;
    drive->total = static_cast<long>(
        static_cast<double>(total_requests) *
        static_cast<double>(by_worker[w].size()) /
        static_cast<double>(total_channels));
    if (drive->total <= 0) drive->total = 1;
    assigned += drive->total;
    drives.push_back(std::move(drive));
  }
  // Rounding remainder lands on the first worker.
  if (!drives.empty() && assigned != total_requests) {
    drives[0]->total += total_requests - assigned;
  }
  const auto start = std::chrono::steady_clock::now();
  for (auto& drive : drives) {
    drive->to_issue.store(drive->total);
    for (int k = 0; k < kInflightWindow; ++k) issue_next(drive, rpc_us);
  }
  for (auto& drive : drives) {
    drive->done.get_future().wait();
    if (drive->errors.load() != 0) {
      std::cout << "  WARNING: " << drive->errors.load()
                << " event-core requests failed\n";
    }
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
      .count();
}

void reproduce_event_core(
    bench::Report& report,
    std::vector<std::unique_ptr<WorkerFixture>>& fixtures,
    obs::Histogram& rpc_us) {
  using switchboard::EventChannel;
  using switchboard::Reactor;

  const int kWorkers = static_cast<int>(fixtures.size());
  const int threads_before = switchboard::count_os_threads();

  // Sharded backend: one share-nothing MailServer per reactor worker, a
  // pool of pre-registered accounts spread across shards by mailbox hash.
  constexpr int kAccountPool = 1024;
  mail::ShardedMailBackend backend(static_cast<std::size_t>(kWorkers));
  for (int i = 0; i < kAccountPool; ++i) {
    const std::string user = "u" + std::to_string(i);
    backend.register_account(user, "555-" + std::to_string(i), user + "@x");
  }

  Reactor reactor({.workers = kWorkers});
  reactor.start();

  // Heartbeats for the per-worker trunks ride the timer wheel — zero
  // dedicated threads, unlike HeartbeatDriver's thread-per-connection.
  std::vector<switchboard::HeartbeatHandle> heartbeats;
  for (auto& fixture : fixtures) {
    heartbeats.push_back(reactor.schedule_heartbeats(
        fixture->conn, std::chrono::milliseconds(250)));
  }

  struct Session {
    std::shared_ptr<EventChannel> client;
    std::shared_ptr<EventChannel> server;
  };
  std::vector<Session> sessions;
  std::vector<std::vector<EventChannel*>> by_worker(
      static_cast<std::size_t>(kWorkers));
  std::vector<std::vector<util::Bytes>> requests_by_worker(
      static_cast<std::size_t>(kWorkers));

  // Sessions persist across ramp steps (a real fleet doesn't reconnect
  // between load levels); each step only adds the delta.
  auto grow_sessions = [&](long target) {
    sessions.reserve(static_cast<std::size_t>(target));
    while (static_cast<long>(sessions.size()) < target) {
      const std::size_t i = sessions.size();
      const std::string mailbox = "u" + std::to_string(i % kAccountPool);
      const int worker = static_cast<int>(backend.shard_of(mailbox));
      auto& shard = backend.shard(static_cast<std::size_t>(worker));
      auto pair = switchboard::make_memory_conduit_pair();
      Session session;
      session.server = reactor.serve(
          worker, std::move(pair.b), fixtures[worker]->conn,
          [&shard](const util::Bytes& request, util::Bytes& response) {
            shard.handle(request, response);
          });
      session.client = reactor.open(worker, std::move(pair.a),
                                    fixtures[worker]->conn,
                                    static_cast<std::uint64_t>(i) + 1,
                                    mailbox);
      by_worker[static_cast<std::size_t>(worker)].push_back(
          session.client.get());
      std::vector<Value> request;
      request.push_back(Value::string("mail"));
      request.push_back(Value::string("getPhone"));
      request.push_back(Value::string(mailbox));
      util::Bytes plain;
      obs::append_trace_header(obs::SpanContext{}, plain);
      minilang::encode_values_into(request, plain);
      requests_by_worker[static_cast<std::size_t>(worker)].push_back(
          std::move(plain));
      sessions.push_back(std::move(session));
    }
    // Handshakes are asynchronous; wait until the whole fleet is
    // established before measuring.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(300);
    std::size_t established = 0;
    while (established < sessions.size()) {
      if (sessions[established].client->state() ==
          EventChannel::State::kEstablished) {
        ++established;
        continue;
      }
      if (std::chrono::steady_clock::now() > deadline) {
        std::cout << "  GATE FAILED: only " << established << "/"
                  << sessions.size() << " sessions established\n";
        ++g_gate_failures;
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };

  const int kRequestsPerClient = 2;
  const std::vector<long> ramp =
      bench::smoke_mode() ? std::vector<long>{10'000, 100'000}
                          : std::vector<long>{10'000, 25'000, 50'000,
                                              100'000};
  std::cout << "\n  [event core] " << kWorkers << " workers ("
            << switchboard::to_string(switchboard::transport_from_env())
            << " transport), ramping to " << ramp.back() << " sessions\n";

  obs::journal::set_enabled(true);
  obs::set_contention_profiling(true);
  // ISSUE 9: the continuous profiler rides the whole event section. The
  // loop threads registered themselves in EventLoop::run() at
  // reactor.start(); default cadence (997 us CPU, tick-floored to ~4-10 ms
  // by the kernel) still lands hundreds of samples over the ramp.
  obs::profile::clear();
  const bool profiler_on = obs::profile::start();
  const std::uint64_t hard_before = obs::journal::hard_dropped();
  std::int64_t event_threshold_us = 0;
  obs::Histogram& sojourn_us = obs::histogram("psf.loop.task_sojourn_us");

  for (std::size_t step = 0; step < ramp.size(); ++step) {
    const long clients = ramp[step];
    const long requests = clients * kRequestsPerClient;
    const auto grow_start = std::chrono::steady_clock::now();
    grow_sessions(clients);
    const double grow_secs =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            std::chrono::steady_clock::now() - grow_start)
            .count();

    // Same adaptive-overflow discipline as the thread-core ramp: journal
    // emits land on kWorkers loop threads, so project the per-thread ring
    // overshoot and grow the shared overflow ring before the burst.
    const long per_worker = (requests + kWorkers - 1) / kWorkers;
    const long projected =
        kWorkers *
        std::max<long>(0, per_worker -
                              static_cast<long>(obs::journal::kRingCapacity));
    if (projected > static_cast<long>(obs::journal::overflow_capacity())) {
      obs::journal::set_overflow_capacity(static_cast<std::size_t>(projected));
      std::cout << "  [event core] [ring] grew overflow to "
                << obs::journal::overflow_capacity() << " for a projected "
                << projected << "-event burst\n";
    }

    const auto before = rpc_us.snapshot();
    const auto sojourn_before = sojourn_us.snapshot();
    const double secs = run_event_loaded(by_worker, requests_by_worker,
                                         requests, rpc_us, /*chatty=*/true);
    const auto after = rpc_us.snapshot();
    const auto sojourn_after = sojourn_us.snapshot();

    const std::int64_t p50 = delta_percentile(before, after, 50.0);
    const std::int64_t p99 = delta_percentile(before, after, 99.0);
    // Loop lag = post->run sojourn of tasks posted during the step (the
    // loop.lag SLO input): how long cross-thread work waits for the loop.
    const std::int64_t lag_p99 =
        delta_percentile(sojourn_before, sojourn_after, 99.0);
    const double rps = secs > 0 ? static_cast<double>(requests) / secs : 0.0;
    const int threads_now = switchboard::count_os_threads();
    const std::string tag = "event_ramp_" + std::to_string(clients);
    report.add(tag + ".p50_us", static_cast<double>(p50), "us", requests);
    report.add(tag + ".p99_us", static_cast<double>(p99), "us", requests);
    report.add(tag + ".rps", rps, "req/s", requests);
    report.add(tag + ".threads", static_cast<double>(threads_now), "threads",
               requests);
    report.add(tag + ".loop_lag_p99_us", static_cast<double>(lag_p99), "us",
               requests);
    const std::size_t drained = obs::journal::drain().size();
    obs::journal::reset();

    std::cout << "  [event core] " << clients << " sessions (" << requests
              << " requests, +" << static_cast<long>(grow_secs * 1000)
              << " ms setup): p50 " << p50 << " us, p99 " << p99 << " us, "
              << "loop lag p99 " << lag_p99 << " us, "
              << static_cast<long>(rps) << " req/s, " << threads_now
              << " OS threads, journal drained " << drained << "\n";

    if (step == 0) {
      event_threshold_us =
          std::max<std::int64_t>(1, delta_percentile(before, after, 90.0));
      rpc_us.set_exemplar_threshold(event_threshold_us);
      std::cout << "  [event core] exemplar threshold armed at warmup p90 = "
                << event_threshold_us << " us\n";
    }
  }

  // Gate: OS threads stay O(workers) — the reactor plus a small constant
  // (main, gtest/benchmark plumbing) regardless of session count.
  const int threads_at_peak = switchboard::count_os_threads();
  const bool threads_ok =
      threads_at_peak >= 0 && threads_before >= 0 &&
      threads_at_peak <= threads_before + kWorkers + 2;
  report.derived("event_thread_gate_ok", threads_ok ? 1.0 : 0.0);
  report.derived("event_threads_at_peak",
                 static_cast<double>(threads_at_peak));
  if (!threads_ok) {
    std::cout << "  GATE FAILED: " << threads_at_peak << " OS threads at "
              << sessions.size() << " sessions (allowed: " << threads_before
              << " base + " << kWorkers << " workers + 2)\n";
    ++g_gate_failures;
  } else {
    std::cout << "  [event core] thread gate: " << threads_at_peak
              << " OS threads at " << sessions.size() << " sessions\n";
  }

  // Gate: exemplars captured from event-core traffic resolve to spans.
  bool exemplar_resolved = false;
  const auto final_snapshot = rpc_us.snapshot();
  for (const auto& exemplar : final_snapshot.exemplars) {
    if (!exemplar.valid) continue;
    if (!obs::SpanCollector::instance()
             .spans_for_trace(exemplar.trace_id)
             .empty()) {
      exemplar_resolved = true;
      break;
    }
  }
  report.derived("event_exemplar_resolved", exemplar_resolved ? 1.0 : 0.0);
  if (!exemplar_resolved) {
    std::cout << "  GATE FAILED: no event-core exemplar resolved to spans\n";
    ++g_gate_failures;
  }

  // Gate: the §4f observability-overhead budget holds at the event core
  // too. Same min-of-7 alternating discipline as the thread-per-connection
  // gate above; the load plane is fully on vs fully off.
  const long gate_requests = 20'000;
  const int passes = 7;
  double on_s = 1e300, off_s = 1e300;
  const auto run_off = [&] {
    obs::journal::set_enabled(false);
    obs::set_contention_profiling(false);
    rpc_us.set_exemplar_threshold(INT64_MAX);
    off_s = std::min(off_s, run_event_loaded(by_worker, requests_by_worker,
                                             gate_requests, rpc_us));
  };
  const auto run_on = [&] {
    obs::journal::set_enabled(true);
    obs::set_contention_profiling(true);
    rpc_us.set_exemplar_threshold(event_threshold_us);
    on_s = std::min(on_s, run_event_loaded(by_worker, requests_by_worker,
                                           gate_requests, rpc_us));
  };
  for (int pass = 0; pass < passes; ++pass) {
    if (pass % 2 == 0) {
      run_off();
      run_on();
    } else {
      run_on();
      run_off();
    }
  }
  obs::journal::set_enabled(true);
  obs::set_contention_profiling(true);
  const double on_us = on_s / static_cast<double>(gate_requests) * 1e6;
  const double off_us = off_s / static_cast<double>(gate_requests) * 1e6;
  const double overhead_pct =
      off_us > 0 ? (on_us / off_us - 1.0) * 100.0 : 0.0;
  report.add("event_loaded_rpc.obs_on_us", on_us, "us", gate_requests);
  report.add("event_loaded_rpc.obs_off_us", off_us, "us", gate_requests);
  report.derived("event_overhead_at_load_pct", overhead_pct);
  std::cout << "  [event core] loaded RPC: obs on " << on_us << " us, off "
            << off_us << " us (" << overhead_pct
            << "% overhead, budget 5%)\n";
  if (overhead_pct > 5.0) {
    std::cout << "  GATE FAILED: event-core observability overhead "
              << overhead_pct << "% > 5%\n";
    ++g_gate_failures;
  }

  // Gate (ISSUE 9): the profiler's top span-attributed folded stack names a
  // real operation — CPU is attributed to logical span paths like
  // loop.N > switchboard.dispatch, not just bare thread roots.
  {
    const obs::profile::Report prof = obs::profile::report();
    report.derived("profile_samples", static_cast<double>(prof.samples));
    static const char* const kKnownSpans[] = {
        "switchboard.dispatch", "switchboard.call", "switchboard.authorize",
        "switchboard.handshake", "drbac.prove", "psf.request"};
    std::string top_line;
    bool top_ok = false;
    for (const auto& entry : prof.entries) {  // highest count first
      bool has_span = false;
      for (const auto& frame : entry.frames) {
        for (const char* known : kKnownSpans) {
          if (frame == known) has_span = true;
        }
      }
      if (!has_span) continue;
      top_ok = true;
      for (const auto& frame : entry.frames) {
        if (!top_line.empty()) top_line += ';';
        top_line += frame;
      }
      top_line += ' ' + std::to_string(entry.count);
      break;
    }
    report.derived("profile_top_stack_ok",
                   profiler_on && top_ok ? 1.0 : 0.0);
    if (!profiler_on || !top_ok) {
      std::cout << "  GATE FAILED: profiler " << (profiler_on ? "found" : "off,")
                << " no span-attributed stack in " << prof.samples
                << " samples\n";
      ++g_gate_failures;
    } else {
      std::cout << "  [event core] profiler: " << prof.samples
                << " samples, top span stack: " << top_line << "\n";
    }
  }

  // Gate (ISSUE 9): profiler overhead at load <= 5%. Same min-of-7
  // alternating discipline; both arms keep the rest of the obs plane fully
  // on, so the delta isolates the SIGPROF + ring-append cost.
  double prof_on_s = 1e300, prof_off_s = 1e300;
  const auto run_prof_off = [&] {
    obs::profile::stop();
    prof_off_s =
        std::min(prof_off_s, run_event_loaded(by_worker, requests_by_worker,
                                              gate_requests, rpc_us));
  };
  const auto run_prof_on = [&] {
    obs::profile::start();
    prof_on_s =
        std::min(prof_on_s, run_event_loaded(by_worker, requests_by_worker,
                                             gate_requests, rpc_us));
  };
  for (int pass = 0; pass < passes; ++pass) {
    if (pass % 2 == 0) {
      run_prof_off();
      run_prof_on();
    } else {
      run_prof_on();
      run_prof_off();
    }
  }
  obs::profile::stop();
  const double prof_on_us =
      prof_on_s / static_cast<double>(gate_requests) * 1e6;
  const double prof_off_us =
      prof_off_s / static_cast<double>(gate_requests) * 1e6;
  const double profiler_pct =
      prof_off_us > 0 ? (prof_on_us / prof_off_us - 1.0) * 100.0 : 0.0;
  report.add("event_loaded_rpc.profiler_on_us", prof_on_us, "us",
             gate_requests);
  report.add("event_loaded_rpc.profiler_off_us", prof_off_us, "us",
             gate_requests);
  report.derived("profiler_overhead_at_load_pct", profiler_pct);
  std::cout << "  [event core] loaded RPC: profiler on " << prof_on_us
            << " us, off " << prof_off_us << " us (" << profiler_pct
            << "% overhead, budget 5%)\n";
  if (profiler_pct > 5.0) {
    std::cout << "  GATE FAILED: profiler overhead " << profiler_pct
              << "% > 5%\n";
    ++g_gate_failures;
  }

  // Gate: zero hard journal drops across the whole event section.
  const std::uint64_t hard_drops =
      obs::journal::hard_dropped() - hard_before;
  report.derived("event_journal_hard_drops",
                 static_cast<double>(hard_drops));
  if (hard_drops != 0) {
    std::cout << "  GATE FAILED: " << hard_drops
              << " journal events hard-dropped during the event ramp\n";
    ++g_gate_failures;
  }

  // Graceful teardown: drain every session (BYE, flush, close) before the
  // reactor stops, exercising the kDraining path at fleet scale.
  for (auto& heartbeat : heartbeats) heartbeat.cancel();
  for (auto& session : sessions) session.client->begin_drain();
  const auto drain_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  std::size_t closed = 0;
  while (closed < sessions.size() &&
         std::chrono::steady_clock::now() < drain_deadline) {
    if (sessions[closed].client->state() == EventChannel::State::kClosed) {
      ++closed;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  report.derived("event_sessions_drained",
                 closed == sessions.size() ? 1.0 : 0.0);
  if (closed != sessions.size()) {
    std::cout << "  GATE FAILED: only " << closed << "/" << sessions.size()
              << " sessions drained cleanly\n";
    ++g_gate_failures;
  }
  reactor.stop();
  std::cout << "  [event core] backend served " << backend.total_requests()
            << " requests across " << backend.shards() << " shards\n";
}

void reproduce() {
  obs::install_builtin_slos();  // declares switchboard.rpc over rpc_us
  obs::install_lock_contention_profiler();
  obs::journal::set_enabled(true);
  obs::journal::reset();

  const int kWorkers = worker_count();
  std::vector<std::unique_ptr<WorkerFixture>> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.push_back(std::make_unique<WorkerFixture>(100 + w));
  }
  obs::Histogram& rpc_us = obs::histogram("psf.switchboard.rpc_us");

  bench::Report report("mail_load");
  const int kRequestsPerClient = 2;
  const std::vector<long> ramp = bench::smoke_mode()
                                     ? std::vector<long>{1000, 10000}
                                     : std::vector<long>{1000, 5000, 10000,
                                                         20000};
  std::cout << "\n  " << kWorkers << " workers, "
            << (ramp.size()) << " ramp steps, " << kRequestsPerClient
            << " requests per client\n\n";

  const std::uint64_t soft_before = obs::journal::soft_dropped();
  const std::uint64_t hard_before = obs::journal::hard_dropped();
  std::int64_t adaptive_threshold_us = 0;

  for (std::size_t step = 0; step < ramp.size(); ++step) {
    const long clients = ramp[step];
    const long requests = clients * kRequestsPerClient;

    // Adaptive overflow ring: project the journal burst this step will push
    // past the fixed per-thread rings and grow the shared overflow ring
    // before — not after — the burst would hard-drop.
    const long per_worker = (requests + kWorkers - 1) / kWorkers;
    const long projected =
        kWorkers * std::max<long>(0, per_worker -
                                         static_cast<long>(
                                             obs::journal::kRingCapacity));
    if (projected > static_cast<long>(obs::journal::overflow_capacity())) {
      obs::journal::set_overflow_capacity(static_cast<std::size_t>(projected));
      std::cout << "  [ring] grew overflow to "
                << obs::journal::overflow_capacity() << " for a projected "
                << projected << "-event burst\n";
    }

    const auto before = rpc_us.snapshot();
    const double secs = run_loaded(workers, requests, /*chatty=*/true);
    const auto after = rpc_us.snapshot();

    const std::int64_t p50 = delta_percentile(before, after, 50.0);
    const std::int64_t p99 = delta_percentile(before, after, 99.0);
    const double rps = secs > 0 ? static_cast<double>(requests) / secs : 0.0;
    const std::string tag = "ramp_" + std::to_string(clients);
    report.add(tag + ".p50_us", static_cast<double>(p50), "us", requests);
    report.add(tag + ".p99_us", static_cast<double>(p99), "us", requests);
    report.add(tag + ".rps", rps, "req/s", requests);

    // Scraping-collector behavior: drain the journal between steps, then
    // reset the rings so every step's soft/hard accounting is its own.
    const std::size_t drained = obs::journal::drain().size();
    report.add(tag + ".journal_drained", static_cast<double>(drained),
               "events", requests);
    obs::journal::reset();

    std::cout << "  " << clients << " clients (" << requests
              << " requests): p50 " << p50 << " us, p99 " << p99 << " us, "
              << static_cast<long>(rps) << " req/s, journal drained "
              << drained << "\n";

    if (step == 0) {
      // Adaptive exemplar threshold: the warmup step's p90 defines "tail"
      // for the rest of the ramp (the builtin SLO armed a fixed 500us,
      // which healthy RPCs never reach on this fixture).
      adaptive_threshold_us =
          std::max<std::int64_t>(1, delta_percentile(before, after, 90.0));
      rpc_us.set_exemplar_threshold(adaptive_threshold_us);
      std::cout << "  [exemplar] threshold armed at warmup p90 = "
                << adaptive_threshold_us << " us\n";
    }
  }

  // Tail exemplars captured during the loaded steps must resolve to real
  // spans: pick any bucket exemplar whose trace the SpanCollector can still
  // produce (the most recent captures are always in the ring; pinned ones
  // additionally survive eviction).
  bool exemplar_resolved = false;
  const auto final_snapshot = rpc_us.snapshot();
  const auto tail = final_snapshot.tail_exemplar();
  for (const auto& exemplar : final_snapshot.exemplars) {
    if (!exemplar.valid) continue;
    if (!obs::SpanCollector::instance()
             .spans_for_trace(exemplar.trace_id)
             .empty()) {
      exemplar_resolved = true;
      break;
    }
  }
  std::cout << "  [exemplar] tail capture "
            << (tail.valid ? "present" : "absent") << ", resolves to spans: "
            << (exemplar_resolved ? "yes" : "NO") << "\n";

  const std::uint64_t soft_drops = obs::journal::soft_dropped() - soft_before;
  const std::uint64_t hard_drops = obs::journal::hard_dropped() - hard_before;
  report.add("journal.soft_drops", static_cast<double>(soft_drops), "events");
  report.add("journal.hard_drops", static_cast<double>(hard_drops), "events");
  std::cout << "  [ring] " << soft_drops
            << " events absorbed by the overflow ring, " << hard_drops
            << " lost\n";

  // SLO plane after the ramp: at 500us the secure-RPC objective must not be
  // burning error budget under this (healthy) load.
  double rpc_burn = 0.0;
  for (const auto& status : obs::SloRegistry::instance().evaluate()) {
    if (status.spec.name == "switchboard.rpc") rpc_burn = status.burn;
  }
  std::cout << "  [slo] switchboard.rpc burn rate " << rpc_burn << "\n";

  // The §4f gate, measured at load: alternate full-load-plane-on and -off
  // passes and keep each configuration's best wall clock; the minima cancel
  // scheduler and frequency jitter the way bench_obs_overhead's do. Passes
  // are long (tens of ms) and the on/off order flips every pass — on this
  // class of small shared machine, short passes measure the scheduler, not
  // the load plane.
  const long gate_requests = 20000;
  const int passes = 7;  // min-of-7: the estimator has to outlast scheduler
                         // noise even in CI smoke, where the gate is asserted
  double on_s = 1e300, off_s = 1e300, chatty_s = 1e300;
  const auto run_off = [&] {
    obs::journal::set_enabled(false);
    obs::set_contention_profiling(false);
    rpc_us.set_exemplar_threshold(INT64_MAX);
    off_s = std::min(off_s, run_loaded(workers, gate_requests, false));
  };
  const auto load_plane_on = [&] {
    obs::journal::set_enabled(true);
    obs::set_contention_profiling(true);
    rpc_us.set_exemplar_threshold(adaptive_threshold_us);
  };
  const auto run_on = [&] {
    load_plane_on();
    on_s = std::min(on_s, run_loaded(workers, gate_requests, false));
  };
  // Diagnostic (reported, not gated): the same load with a per-request
  // journal event — debug-verbosity journaling at a volume that displaces
  // most events into the shared overflow ring, i.e. the worst case the
  // adaptive ring is for.
  const auto run_chatty = [&] {
    load_plane_on();
    chatty_s = std::min(chatty_s, run_loaded(workers, gate_requests, true));
    // Scrape and rewind so every chatty pass pays the same ring-salvage
    // cost instead of compounding overflow laps across passes.
    obs::journal::drain();
    obs::journal::reset();
  };
  for (int pass = 0; pass < passes; ++pass) {
    // Flip the order every pass so slow drift (thermal, noisy neighbors)
    // hits each configuration's minimum equally.
    if (pass % 2 == 0) {
      run_off();
      run_on();
      run_chatty();
    } else {
      run_chatty();
      run_on();
      run_off();
    }
  }
  const double on_us = on_s / static_cast<double>(gate_requests) * 1e6;
  const double off_us = off_s / static_cast<double>(gate_requests) * 1e6;
  const double chatty_us = chatty_s / static_cast<double>(gate_requests) * 1e6;
  const double overhead_pct = off_us > 0 ? (on_us / off_us - 1.0) * 100.0 : 0.0;
  const double chatty_pct =
      off_us > 0 ? (chatty_us / off_us - 1.0) * 100.0 : 0.0;

  report.add("loaded_rpc.obs_on_us", on_us, "us", gate_requests);
  report.add("loaded_rpc.obs_off_us", off_us, "us", gate_requests);
  report.add("loaded_rpc.obs_chatty_us", chatty_us, "us", gate_requests);
  report.derived("journal_overhead_at_load_pct", overhead_pct);
  report.derived("chatty_journal_overhead_pct", chatty_pct);
  report.derived("exemplar_resolved", exemplar_resolved ? 1.0 : 0.0);
  report.derived("exemplar_threshold_us",
                 static_cast<double>(adaptive_threshold_us));
  report.derived("journal_hard_drops", static_cast<double>(hard_drops));

  // ISSUE 7: the same workload through the readiness-driven core, ramped to
  // 100k sessions. The thread-per-connection path above stays measured (and
  // gated) for differential comparison; PSF_SWITCHBOARD_TRANSPORT=threads
  // skips the event section for old-core-only runs.
  if (switchboard::transport_from_env() ==
      switchboard::TransportKind::kEventLoop) {
    reproduce_event_core(report, workers, rpc_us);
  } else {
    std::cout << "\n  [event core] skipped "
                 "(PSF_SWITCHBOARD_TRANSPORT=threads)\n";
  }
  report.write();

  std::cout << "  loaded RPC: obs on " << on_us << " us, off " << off_us
            << " us (" << overhead_pct << "% overhead, budget 5%)\n"
            << "  loaded RPC, per-request journaling: " << chatty_us
            << " us (" << chatty_pct << "% over off; diagnostic, not gated)\n";
  if (overhead_pct > 5.0) {
    std::cout << "  GATE FAILED: observability overhead at load "
              << overhead_pct << "% > 5%\n";
    ++g_gate_failures;
  }
  if (hard_drops != 0) {
    std::cout << "  GATE FAILED: " << hard_drops
              << " journal events hard-dropped despite the adaptive ring\n";
    ++g_gate_failures;
  }
  if (!exemplar_resolved) {
    std::cout << "  GATE FAILED: no captured exemplar resolved to spans\n";
    ++g_gate_failures;
  }
}

void BM_LoadedRpcObsOn(benchmark::State& state) {
  static WorkerFixture f(7);
  obs::journal::set_enabled(true);
  for (auto _ : state) f.one_request(0, 0, false);
}
BENCHMARK(BM_LoadedRpcObsOn);

void BM_LoadedRpcObsOff(benchmark::State& state) {
  static WorkerFixture f(8);
  obs::journal::set_enabled(false);
  for (auto _ : state) f.one_request(0, 0, false);
  obs::journal::set_enabled(true);
}
BENCHMARK(BM_LoadedRpcObsOff);

void BM_LoadedRpcChattyJournal(benchmark::State& state) {
  static WorkerFixture f(9);
  obs::journal::set_enabled(true);
  std::int64_t i = 0;
  for (auto _ : state) f.one_request(0, i++, true);
}
BENCHMARK(BM_LoadedRpcChattyJournal);

}  // namespace

int main(int argc, char** argv) {
  const int rc = psf::bench::run(
      argc, argv, "ISSUE 6: mail load ramp (SLOs, exemplars, adaptive ring)",
      reproduce);
  return rc != 0 ? rc : (g_gate_failures != 0 ? 1 : 0);
}
