// Claim C3 (paper §4.3): Switchboard connection costs — handshake (key
// exchange + identity signatures + mutual authorization), per-call overhead
// of the secure channel vs the plaintext rmi baseline, raw frame
// seal/unseal throughput by payload size, heartbeat cost, and the latency
// from credential revocation to AuthorizationMonitor notification.
#include "bench_util.hpp"
#include "mail/components.hpp"
#include "minilang/interp.hpp"
#include "switchboard/channel.hpp"

namespace {

using namespace psf;
using drbac::Principal;
using minilang::Value;
using switchboard::AcceptAllAuthorizer;
using switchboard::AuthorizationSuite;
using switchboard::Connection;
using switchboard::RoleAuthorizer;

struct Fixture {
  util::Rng rng{77};
  std::shared_ptr<util::SimClock> clock = std::make_shared<util::SimClock>();
  switchboard::Network net;
  drbac::Repository repo;
  drbac::Entity guard = drbac::Entity::create("Guard", rng);
  drbac::Entity client = drbac::Entity::create("Client", rng);
  drbac::Entity server = drbac::Entity::create("Server", rng);
  switchboard::Switchboard client_board{"client", &net, clock};
  switchboard::Switchboard server_board{"server", &net, clock};
  minilang::ClassRegistry registry;
  drbac::DelegationPtr client_cred;
  std::shared_ptr<Connection> conn;

  Fixture() {
    net.connect("client", "server", {util::kMillisecond, 0, false});
    mail::register_all(registry);
    auto service = minilang::instantiate(registry, "MailServer");
    service->call("registerAccount",
                  {Value::string("alice"), Value::string("555"),
                   Value::string("a@x")});
    server_board.register_service("mail", service);
    client_cred = drbac::issue(guard, Principal::of_entity(client),
                               drbac::role_of(guard, "Member"), {}, false, 0,
                               0, repo.next_serial());
    repo.add(client_cred);
    AuthorizationSuite server_suite;
    server_suite.identity = server;
    server_suite.authorizer = std::make_shared<RoleAuthorizer>(
        &repo, drbac::role_of(guard, "Member"));
    server_board.set_suite(server_suite);
    conn = connect();
  }

  AuthorizationSuite client_suite() {
    AuthorizationSuite suite;
    suite.identity = client;
    suite.credentials = {client_cred};
    suite.authorizer = std::make_shared<AcceptAllAuthorizer>();
    return suite;
  }

  std::shared_ptr<Connection> connect() {
    auto r = client_board.connect(server_board, client_suite(), rng);
    return r.value();
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void reproduce() {
  Fixture& f = fixture();
  std::cout << "  connection established: open=" << f.conn->open()
            << ", simulated handshake time = "
            << f.conn->stats().handshake_time / util::kMillisecond
            << " ms (3 flights over a 1 ms link)\n";
  f.conn->call(Connection::End::kA, "mail", "getPhone",
               {Value::string("alice")});
  std::cout << "  one RPC: " << f.conn->stats().bytes
            << " encrypted+MACed bytes, simulated RTT = "
            << f.conn->stats().last_rtt / util::kMillisecond << " ms\n";
  f.conn->heartbeat();
  std::cout << "  heartbeat: replay-resistant, RTT = "
            << f.conn->stats().last_rtt / util::kMillisecond << " ms\n";

  // Revocation-to-notification latency (in calls, not time: the monitor is
  // push-based, so notification is immediate and synchronous). Use a
  // dedicated demo identity so the fixture's own connection is untouched.
  drbac::Entity demo = drbac::Entity::create("Demo", f.rng);
  auto demo_cred = drbac::issue(f.guard, Principal::of_entity(demo),
                                drbac::role_of(f.guard, "Member"), {}, false,
                                0, 0, f.repo.next_serial());
  f.repo.add(demo_cred);
  AuthorizationSuite demo_suite;
  demo_suite.identity = demo;
  demo_suite.credentials = {demo_cred};
  demo_suite.authorizer = std::make_shared<AcceptAllAuthorizer>();
  auto conn = f.client_board.connect(f.server_board, demo_suite, f.rng).value();
  bool notified = false;
  conn->set_authorization_listener(
      [&](Connection::End, const std::string&) { notified = true; });
  f.repo.revoke(demo_cred->serial);
  std::cout << "  revocation -> AuthorizationMonitor fired synchronously: "
            << (notified ? "yes" : "no")
            << " (vs SSL/TLS: never, until renegotiation)\n";

  // Perf trajectory (BENCH_switchboard.json): the zero-copy frame path —
  // streaming HMAC from keyed midstates, in-place ChaCha20, scratch-buffer
  // reuse, O(1) replay bitmap — is tracked here across PRs.
  bench::Report report("switchboard");
  const int call_iters = bench::iterations(2000);
  const double secure_us = bench::time_us(call_iters, [&] {
    f.conn->call(Connection::End::kA, "mail", "getPhone",
                 {Value::string("alice")});
  });
  report.add("secure_rpc_call", secure_us, "us", call_iters);
  switchboard::RmiStub stub(&f.net, "client", &f.server_board, "mail");
  const double rmi_us = bench::time_us(call_iters, [&] {
    stub.call("getPhone", {Value::string("alice")});
  });
  report.add("plaintext_rmi_call", rmi_us, "us", call_iters);
  for (const std::size_t size : {std::size_t{64}, std::size_t{1024},
                                 std::size_t{16384}, std::size_t{262144}}) {
    const util::Bytes payload = f.rng.next_bytes(size);
    util::Bytes frame, plain;
    const int iters = bench::iterations(size >= 262144 ? 200 : 2000);
    const double us = bench::time_us(iters, [&] {
      f.conn->seal_into(Connection::End::kA, payload.data(), payload.size(),
                        frame);
      auto r = f.conn->unseal_into(Connection::End::kB, frame, plain);
      benchmark::DoNotOptimize(r);
    });
    report.add("seal_unseal_" + std::to_string(size), us, "us", iters);
    if (us > 0) {
      report.derived("seal_unseal_" + std::to_string(size) + "_mb_s",
                     static_cast<double>(size) / us);
    }
  }
  const double hb_us = bench::time_us(call_iters, [&] { f.conn->heartbeat(); });
  report.add("heartbeat", hb_us, "us", call_iters);
  if (secure_us > 0 && rmi_us > 0) {
    report.derived("secure_over_rmi", secure_us / rmi_us);
  }
  report.write();
  std::cout << "  call path: secure=" << secure_us << " us, rmi=" << rmi_us
            << " us, heartbeat=" << hb_us << " us\n";
}

void BM_HandshakeFull(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    auto conn = f.connect();
    benchmark::DoNotOptimize(conn);
  }
}
BENCHMARK(BM_HandshakeFull);

void BM_SecureRpcCall(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.conn->call(Connection::End::kA, "mail",
                                          "getPhone",
                                          {Value::string("alice")}));
  }
}
BENCHMARK(BM_SecureRpcCall);

void BM_PlaintextRmiCall(benchmark::State& state) {
  Fixture& f = fixture();
  switchboard::RmiStub stub(&f.net, "client", &f.server_board, "mail");
  for (auto _ : state) {
    benchmark::DoNotOptimize(stub.call("getPhone", {Value::string("alice")}));
  }
}
BENCHMARK(BM_PlaintextRmiCall);

void BM_FrameSealUnseal(benchmark::State& state) {
  Fixture& f = fixture();
  const util::Bytes payload = f.rng.next_bytes(
      static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const util::Bytes frame = f.conn->seal(Connection::End::kA, payload);
    auto plain = f.conn->unseal(Connection::End::kB, frame);
    benchmark::DoNotOptimize(plain);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FrameSealUnseal)->Arg(64)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_Heartbeat(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    f.conn->heartbeat();
  }
}
BENCHMARK(BM_Heartbeat);

void BM_RevocationNotification(benchmark::State& state) {
  // Cost of revoking a watched credential and delivering the notification.
  Fixture& f = fixture();
  for (auto _ : state) {
    state.PauseTiming();
    auto cred = drbac::issue(f.guard, Principal::of_entity(f.client),
                             drbac::role_of(f.guard, "Member"), {}, false, 0,
                             0, f.repo.next_serial());
    f.repo.add(cred);
    auto conn = f.connect();
    state.ResumeTiming();
    f.repo.revoke(cred->serial);
    benchmark::DoNotOptimize(conn->suspended(Connection::End::kA));
  }
}
BENCHMARK(BM_RevocationNotification);

}  // namespace

int main(int argc, char** argv) {
  return psf::bench::run(
      argc, argv, "Claim C3: Switchboard channel costs vs rmi baseline",
      reproduce);
}
