// Ablation A1 (DESIGN.md §5): the cache-coherence bracket. Views pay
// acquireImage/releaseImage on every method (paper §4.3, following the
// OOPSLA'99 object-views work); this bench quantifies that bracket by
// policy (none / pull / push / pull+push) and by image size, plus the raw
// extract/merge codec cost.
#include "bench_util.hpp"
#include "mail/components.hpp"
#include "minilang/interp.hpp"
#include "views/cache.hpp"
#include "views/vig.hpp"

namespace {

using namespace psf;
using minilang::Value;
using views::CacheManager;

struct Fixture {
  minilang::ClassRegistry registry;
  std::shared_ptr<minilang::Instance> original;

  Fixture() {
    mail::register_all(registry);
    views::Vig vig(&registry);
    auto def = views::ViewDefinition::from_xml(mail::view_xml_member());
    if (!vig.generate(def.value()).ok()) std::abort();
    original = minilang::instantiate(registry, "MailClient");
    original->call("addAccount", {Value::string("alice"), Value::string("1"),
                                  Value::string("a@x")});
  }

  std::shared_ptr<minilang::Instance> make_view(CacheManager::Policy policy) {
    auto view = minilang::instantiate(registry, "ViewMailClient_Member");
    views::attach_cache_manager(view, Value::object(original), policy);
    // Seed the view once (policies without pull never sync on their own).
    views::merge_instance_image(*view, views::instance_image(*original));
    return view;
  }

  // Grow the original's notes so images have a controlled size.
  void set_state_size(int entries) {
    minilang::ValueList notes;
    for (int i = 0; i < entries; ++i) {
      notes.push_back(Value::string("note-" + std::to_string(i) +
                                    std::string(32, 'x')));
    }
    original->set_field("notes", Value::list(std::move(notes)));
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void reproduce() {
  Fixture& f = fixture();
  std::cout << "  per-call coherence traffic by policy (getPhone through a\n"
            << "  member view wired to a local original):\n";
  for (auto [label, policy] :
       {std::pair{"none     ", CacheManager::Policy::kNone},
        std::pair{"pull     ", CacheManager::Policy::kPull},
        std::pair{"push     ", CacheManager::Policy::kPush},
        std::pair{"pull+push", CacheManager::Policy::kPullPush}}) {
    auto view = f.make_view(policy);
    auto* cache = dynamic_cast<CacheManager*>(view->hooks());
    view->call("getPhone", {Value::string("alice")});
    std::cout << "    " << label << "  pulls=" << cache->stats().pulls
              << " pushes=" << cache->stats().pushes << "\n";
  }
  std::cout << "  (pull is what makes the read correct; push is write-back\n"
            << "   traffic a read-only method does not need — the ablation\n"
            << "   below quantifies both.)\n";

  // Delta coherence (BENCH_coherence.json): with field-level dirty tracking
  // the steady-state image carries only the dirtied fields, so coherence
  // bytes per op stop scaling with object size. Compare the cold (full) sync
  // against the warm delta when a single small field is dirty.
  bench::Report report("coherence");
  std::cout << "  delta coherence: image bytes, cold full sync vs warm delta\n"
            << "  (one small field dirty between calls):\n";
  for (const int entries : {16, 128, 1024}) {
    f.set_state_size(entries);
    const std::string suffix = std::to_string(entries);
    auto view = f.make_view(CacheManager::Policy::kPull);
    auto* cache = dynamic_cast<CacheManager*>(view->hooks());
    const util::Bytes cold = cache->extract_from_original(*f.original);
    views::ImageFrame frame;
    cache->merge_pull(*view, cold);
    // Warm pull: dirty one small field, extract again — a delta now.
    f.original->set_field("outbox",
                          Value::list({Value::string("ping-" + suffix)}));
    const util::Bytes warm = cache->extract_from_original(*f.original);
    views::read_image_frame(warm, frame);
    cache->merge_pull(*view, warm);
    report.add("full_image_bytes_" + suffix,
               static_cast<double>(cold.size()), "bytes");
    report.add("delta_image_bytes_" + suffix,
               static_cast<double>(warm.size()), "bytes");
    report.derived("delta_reduction_" + suffix,
                   static_cast<double>(cold.size()) /
                       static_cast<double>(warm.size()));
    std::cout << "    " << entries << " notes: full=" << cold.size()
              << " B, delta=" << warm.size() << " B ("
              << (frame.is_delta() ? "delta" : "full") << ")\n";
  }
  f.set_state_size(0);

  // Wall-clock trajectory for the bracketed call itself.
  for (const int entries : {16, 1024}) {
    f.set_state_size(entries);
    auto view = f.make_view(CacheManager::Policy::kPullPush);
    const int iters = bench::iterations(entries >= 1024 ? 200 : 1000);
    const double us = bench::time_us(iters, [&] {
      view->call("getPhone", {Value::string("alice")});
    });
    report.add("view_call_" + std::to_string(entries) + "_notes", us, "us",
               iters);
  }
  f.set_state_size(0);
  report.write();
}

void BM_ViewCallByPolicy(benchmark::State& state) {
  Fixture& f = fixture();
  f.set_state_size(16);
  const auto policy = static_cast<CacheManager::Policy>(state.range(0));
  auto view = f.make_view(policy);
  for (auto _ : state) {
    benchmark::DoNotOptimize(view->call("getPhone", {Value::string("alice")}));
  }
}
BENCHMARK(BM_ViewCallByPolicy)
    ->Arg(static_cast<int>(CacheManager::Policy::kNone))
    ->Arg(static_cast<int>(CacheManager::Policy::kPull))
    ->Arg(static_cast<int>(CacheManager::Policy::kPush))
    ->Arg(static_cast<int>(CacheManager::Policy::kPullPush));

void BM_ViewCallByImageSize(benchmark::State& state) {
  Fixture& f = fixture();
  f.set_state_size(static_cast<int>(state.range(0)));
  auto view = f.make_view(CacheManager::Policy::kPullPush);
  for (auto _ : state) {
    benchmark::DoNotOptimize(view->call("getPhone", {Value::string("alice")}));
  }
  f.set_state_size(0);
}
BENCHMARK(BM_ViewCallByImageSize)->Arg(0)->Arg(16)->Arg(128)->Arg(1024);

void BM_ExtractImage(benchmark::State& state) {
  Fixture& f = fixture();
  f.set_state_size(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(views::instance_image(*f.original));
  }
  f.set_state_size(0);
}
BENCHMARK(BM_ExtractImage)->Arg(16)->Arg(128)->Arg(1024);

void BM_MergeImage(benchmark::State& state) {
  Fixture& f = fixture();
  f.set_state_size(static_cast<int>(state.range(0)));
  const util::Bytes image = views::instance_image(*f.original);
  auto target = minilang::instantiate(f.registry, "MailClient");
  for (auto _ : state) {
    views::merge_instance_image(*target, image);
  }
  f.set_state_size(0);
}
BENCHMARK(BM_MergeImage)->Arg(16)->Arg(128)->Arg(1024);

}  // namespace

int main(int argc, char** argv) {
  return psf::bench::run(
      argc, argv, "Ablation A1: cache-coherence bracket cost", reproduce);
}
