// Table 1 reproduction: the three dRBAC delegation types — self-certifying,
// third-party, and assignment — constructed, signed, classified, and
// verified. Timings cover issuance (keygen excluded) and signature
// verification per type.
#include "bench_util.hpp"
#include "drbac/credential.hpp"
#include "util/rng.hpp"

namespace {

using namespace psf;
using drbac::Attribute;
using drbac::Principal;

struct World {
  util::Rng rng{1};
  drbac::Entity issuer = drbac::Entity::create("Issuer", rng);
  drbac::Entity entity = drbac::Entity::create("Entity", rng);
  drbac::Entity subject = drbac::Entity::create("Subject", rng);
  drbac::AttributeMap attrs = {
      {"Attr1", Attribute::make_set("Attr1", {"Val1"})},
      {"Attr2", Attribute::make_range("Attr2", 0, 2)}};
};

World& world() {
  static World w;
  return w;
}

void reproduce() {
  World& w = world();
  struct Row {
    const char* label;
    drbac::DelegationPtr credential;
  };
  const Row rows[] = {
      {"Self-certifying",
       drbac::issue(w.issuer, Principal::of_entity(w.subject),
                    drbac::role_of(w.issuer, "Role"), w.attrs, false, 0, 0, 1)},
      {"Third-party",
       drbac::issue(w.issuer, Principal::of_entity(w.subject),
                    drbac::role_of(w.entity, "Role"), w.attrs, false, 0, 0, 2)},
      {"Assignment",
       drbac::issue(w.issuer, Principal::of_entity(w.subject),
                    drbac::role_of(w.entity, "Role"), w.attrs, true, 0, 0, 3)},
  };
  for (const auto& row : rows) {
    std::cout << "  " << row.label << "\t" << row.credential->display()
              << "\n    classified: "
              << drbac::delegation_type_name(row.credential->type())
              << ", signature "
              << (row.credential->verify_signature() ? "OK" : "BAD") << "\n";
  }
}

void BM_IssueSelfCertifying(benchmark::State& state) {
  World& w = world();
  std::uint64_t serial = 100;
  for (auto _ : state) {
    auto c = drbac::issue(w.issuer, Principal::of_entity(w.subject),
                          drbac::role_of(w.issuer, "Role"), w.attrs, false, 0,
                          0, serial++);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_IssueSelfCertifying);

void BM_IssueAssignment(benchmark::State& state) {
  World& w = world();
  std::uint64_t serial = 100;
  for (auto _ : state) {
    auto c = drbac::issue(w.issuer, Principal::of_entity(w.subject),
                          drbac::role_of(w.entity, "Role"), w.attrs, true, 0,
                          0, serial++);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_IssueAssignment);

void BM_VerifySignature(benchmark::State& state) {
  World& w = world();
  auto c = drbac::issue(w.issuer, Principal::of_entity(w.subject),
                        drbac::role_of(w.issuer, "Role"), w.attrs, false, 0, 0,
                        1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c->verify_signature());
  }
}
BENCHMARK(BM_VerifySignature);

void BM_ClassifyType(benchmark::State& state) {
  World& w = world();
  auto c = drbac::issue(w.issuer, Principal::of_entity(w.subject),
                        drbac::role_of(w.entity, "Role"), w.attrs, false, 0, 0,
                        1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c->type());
  }
}
BENCHMARK(BM_ClassifyType);

}  // namespace

int main(int argc, char** argv) {
  return psf::bench::run(argc, argv,
                         "Table 1: dRBAC delegation types", reproduce);
}
