// Table 3 reproduction: (a) the original MailClient object's interfaces and
// methods; (b) the XML rules defining ViewMailClient_Partner, parsed into a
// ViewDefinition. Timings cover XML parsing, definition extraction, and
// serialization back to XML.
#include "bench_util.hpp"
#include "mail/components.hpp"
#include "views/view_def.hpp"
#include "xml/xml.hpp"

namespace {

using namespace psf;

void reproduce() {
  minilang::ClassRegistry registry;
  mail::register_all(registry);

  std::cout << "  (a) the original object:\n";
  auto cls = registry.find_class("MailClient");
  std::cout << "    class MailClient implements ";
  for (std::size_t i = 0; i < cls->interfaces.size(); ++i) {
    std::cout << (i ? ", " : "") << cls->interfaces[i];
  }
  std::cout << "\n";
  for (const auto& m : cls->methods) {
    std::cout << "      "
              << (m.visibility == minilang::Visibility::kPrivate ? "private "
                                                                 : "public  ")
              << m.name << "(";
    for (std::size_t i = 0; i < m.params.size(); ++i) {
      std::cout << (i ? ", " : "") << m.params[i];
    }
    std::cout << ")\n";
  }

  std::cout << "\n  (b) the XML rules, parsed:\n";
  auto def = views::ViewDefinition::from_xml(mail::view_xml_partner());
  const views::ViewDefinition& v = def.value();
  std::cout << "    view " << v.name << " represents " << v.represents << "\n";
  for (const auto& iface : v.interfaces) {
    std::cout << "    restricts " << iface.name << " as "
              << minilang::binding_name(iface.binding) << "\n";
  }
  for (const auto& f : v.added_fields) {
    std::cout << "    adds field " << f.name << " : " << f.type << "\n";
  }
  for (const auto& m : v.added_methods) {
    std::cout << "    adds method " << m.signature() << "\n";
  }
  for (const auto& m : v.customized_methods) {
    std::cout << "    customizes " << m.signature() << "\n";
  }
}

void BM_XmlParse(benchmark::State& state) {
  const std::string& xml = mail::view_xml_partner();
  for (auto _ : state) {
    auto parsed = xml::parse(xml);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_XmlParse);

void BM_ViewDefinitionFromXml(benchmark::State& state) {
  const std::string& xml = mail::view_xml_partner();
  for (auto _ : state) {
    auto def = views::ViewDefinition::from_xml(xml);
    benchmark::DoNotOptimize(def);
  }
}
BENCHMARK(BM_ViewDefinitionFromXml);

void BM_ViewDefinitionToXml(benchmark::State& state) {
  auto def = views::ViewDefinition::from_xml(mail::view_xml_partner());
  for (auto _ : state) {
    benchmark::DoNotOptimize(def.value().to_xml());
  }
}
BENCHMARK(BM_ViewDefinitionToXml);

}  // namespace

int main(int argc, char** argv) {
  return psf::bench::run(
      argc, argv,
      "Table 3: the original object and the XML view rules", reproduce);
}
