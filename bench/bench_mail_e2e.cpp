// Claim C5 (paper §2.2/§3.3): end-to-end mail application adaptation.
// Reproduction: the three-site scenario; PSF masks low WAN bandwidth with a
// replica close to the client and protects sync over insecure links with
// an encryptor/decryptor pair. Timings: full request latency (ACL + plan +
// deploy + channel), warm-session message flow, and image-sync cost with
// and without the cipher pair.
#include "bench_util.hpp"
#include "mail/scenario.hpp"
#include "views/cache.hpp"

namespace {

using namespace psf;
using mail::Scenario;
using minilang::Value;

// Reset every outbox on the replica chain so repeated sends keep coherence
// images bounded between iterations.
void drain_outboxes(Scenario& s, const framework::ClientSession& session) {
  session.view->set_field("outbox", Value::list());
  s.psf->origin_instance("mail")->set_field("outbox", Value::list());
  auto endpoint = std::dynamic_pointer_cast<views::ImageEndpoint>(
      s.psf->node(session.provider_node)->board().lookup("svc:mail"));
  if (endpoint != nullptr &&
      endpoint->target() != s.psf->origin_instance("mail")) {
    endpoint->target()->set_field("outbox", Value::list());
  }
}

void reproduce() {
  Scenario s = mail::build_scenario();
  framework::Psf& psf = *s.psf;

  struct Case {
    const char* label;
    framework::QoS qos;
  };
  const Case cases[] = {
      {"best-effort", {}},
      {"min 1000 kbps", {1000, 0, false}},
      {"min 1000 kbps + privacy", {1000, 0, true}},
  };
  for (const auto& c : cases) {
    auto session = psf.request(s.request_for(s.bob, Scenario::kSdPc, c.qos));
    std::cout << "  Bob @" << Scenario::kSdPc << ", " << c.label << ":\n";
    if (!session.ok()) {
      std::cout << "    FAILED: " << session.error().message << "\n";
      continue;
    }
    std::cout << "    provider=" << session.value().provider_node
              << " replica=" << session.value().plan.uses_replica
              << " ciphers=" << session.value().plan.uses_ciphers << "\n";
    for (const auto& d : session.value().deployed) {
      std::cout << "      deployed " << d << "\n";
    }
    session.value().view->call(
        "sendMessage", {mail::make_message("bob", "alice", "s", "b")});
  }
  std::cout << "  origin outbox after the three sessions: "
            << psf.origin_instance("mail")
                   ->get_field("outbox")
                   .as_list()
                   ->size()
            << " (every path delivered)\n";

  std::cout << "\n  WAN messages so far: " << psf.network().total_messages()
            << " (handshakes + image sync + channel traffic)\n";
}

void BM_FullClientRequest(benchmark::State& state) {
  // Cold request: ACL proof, planning, VIG (cached after first), channel
  // handshake, wiring. Scenario rebuilt outside timing every 16 iterations
  // to bound memory growth from accumulated sessions.
  for (auto _ : state) {
    state.PauseTiming();
    Scenario s = mail::build_scenario();
    state.ResumeTiming();
    auto session = s.psf->request(s.request_for(s.bob, Scenario::kSdPc));
    benchmark::DoNotOptimize(session);
  }
}
BENCHMARK(BM_FullClientRequest)->Unit(benchmark::kMillisecond);

void BM_WarmSessionSendMessage(benchmark::State& state) {
  static Scenario s = mail::build_scenario();
  framework::QoS qos;
  qos.min_bandwidth_kbps = 1000;
  static auto session =
      s.psf->request(s.request_for(s.bob, Scenario::kSdPc, qos));
  const Value message = mail::make_message("bob", "alice", "s", "b");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        session.value().view->call("sendMessage", {message}));
    drain_outboxes(s, session.value());
  }
}
BENCHMARK(BM_WarmSessionSendMessage);

void BM_ImageSyncPlainVsCiphered(benchmark::State& state) {
  // The replica's pull/push cost, with (1) and without (0) the
  // encryptor/decryptor pair on the backend path.
  static Scenario plain = mail::build_scenario();
  static Scenario ciphered = mail::build_scenario();
  framework::QoS qos;
  qos.min_bandwidth_kbps = 1000;
  qos.privacy = state.range(0) == 1;
  Scenario& s = state.range(0) == 1 ? ciphered : plain;
  auto session = s.psf->request(s.request_for(s.bob, Scenario::kSdPc, qos));
  const Value message = mail::make_message("bob", "alice", "s", "b");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        session.value().view->call("sendMessage", {message}));
    drain_outboxes(s, session.value());
  }
}
BENCHMARK(BM_ImageSyncPlainVsCiphered)->Arg(0)->Arg(1);

void BM_AnonymousDirectoryLookup(benchmark::State& state) {
  static Scenario s = mail::build_scenario();
  static drbac::Entity eve = drbac::Entity::create("Eve", s.psf->rng());
  framework::ClientRequest request;
  request.identity = eve;
  request.client_node = Scenario::kSePc;
  request.service = "mail";
  static auto session = s.psf->request(request);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        session.value().view->call("getEmail", {Value::string("alice")}));
  }
}
BENCHMARK(BM_AnonymousDirectoryLookup);

}  // namespace

int main(int argc, char** argv) {
  return psf::bench::run(argc, argv,
                         "Claim C5: end-to-end mail application adaptation",
                         reproduce);
}
