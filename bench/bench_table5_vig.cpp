// Table 5 reproduction: the view source code VIG generates for
// ViewMailClient_Partner — interface declarations with Remote/Serializable
// markers, stub fields, the constructor's lookup preamble, delegating stub
// methods, and the coherence methods. Timings cover cold generation, the
// lazy-generation cache hit, and source emission.
#include "bench_util.hpp"
#include "mail/components.hpp"
#include "views/codegen.hpp"
#include "views/vig.hpp"

namespace {

using namespace psf;

void reproduce() {
  minilang::ClassRegistry registry;
  mail::register_all(registry);
  views::Vig vig(&registry);
  auto def = views::ViewDefinition::from_xml(mail::view_xml_partner());
  auto cls = vig.generate(def.value());
  std::cout << views::generate_java_source(*cls.value(), registry);
}

void BM_VigGenerateCold(benchmark::State& state) {
  auto def = views::ViewDefinition::from_xml(mail::view_xml_partner());
  for (auto _ : state) {
    state.PauseTiming();
    minilang::ClassRegistry registry;
    mail::register_all(registry);
    views::VigOptions options;
    options.cache = false;
    views::Vig vig(&registry, options);
    state.ResumeTiming();
    auto cls = vig.generate(def.value());
    benchmark::DoNotOptimize(cls);
  }
}
BENCHMARK(BM_VigGenerateCold);

void BM_VigCacheHit(benchmark::State& state) {
  minilang::ClassRegistry registry;
  mail::register_all(registry);
  views::Vig vig(&registry);
  auto def = views::ViewDefinition::from_xml(mail::view_xml_partner());
  (void)vig.generate(def.value());
  for (auto _ : state) {
    auto cls = vig.generate(def.value());
    benchmark::DoNotOptimize(cls);
  }
}
BENCHMARK(BM_VigCacheHit);

void BM_JavaSourceEmission(benchmark::State& state) {
  minilang::ClassRegistry registry;
  mail::register_all(registry);
  views::Vig vig(&registry);
  auto def = views::ViewDefinition::from_xml(mail::view_xml_partner());
  auto cls = vig.generate(def.value());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        views::generate_java_source(*cls.value(), registry));
  }
}
BENCHMARK(BM_JavaSourceEmission);

void BM_ViewInstantiation(benchmark::State& state) {
  minilang::ClassRegistry registry;
  mail::register_all(registry);
  views::Vig vig(&registry);
  auto def = views::ViewDefinition::from_xml(mail::view_xml_partner());
  (void)vig.generate(def.value());
  for (auto _ : state) {
    auto view = minilang::instantiate(registry, "ViewMailClient_Partner");
    benchmark::DoNotOptimize(view);
  }
}
BENCHMARK(BM_ViewInstantiation);

}  // namespace

int main(int argc, char** argv) {
  return psf::bench::run(argc, argv,
                         "Table 5: VIG-generated view source", reproduce);
}
