// Table 5 reproduction: the view source code VIG generates for
// ViewMailClient_Partner — interface declarations with Remote/Serializable
// markers, stub fields, the constructor's lookup preamble, delegating stub
// methods, and the coherence methods. Timings cover cold generation, the
// lazy-generation cache hit, and source emission.
//
// Trajectory JSON: BENCH_table5_vig.json — generation cost (now including
// generation-time bytecode compilation of every view method) plus the
// member-stripping figures: the coherence image of a view with dead added
// members, with and without stripping. The stripped image size is gated in
// baselines.json (it is deterministic — encoded bytes, not a timing).
#include "bench_util.hpp"
#include "mail/components.hpp"
#include "minilang/interp.hpp"
#include "views/cache.hpp"
#include "views/codegen.hpp"
#include "views/vig.hpp"

namespace {

using namespace psf;

// A member-style view whose XML declares members nothing reaches: one dead
// added field and one dead added method (the PSA035/PSA036 set VIG strips).
const char* kDeadWeightViewXml = R"(<View name="DeadWeightView">
  <Represents name="MailClient"/>
  <Restricts>
    <Interface name="NotesI" type="local"/>
  </Restricts>
  <Adds_Fields>
    <Field name="auditTrail" type="list"/>
    <Field name="scratchCounter" type="int"/>
  </Adds_Fields>
  <Adds_Methods>
    <MSign>constructor()</MSign>
    <MBody><![CDATA[notes = list(); meetings = list(); auditTrail = list();]]></MBody>
    <MSign>orphanHelper(x)</MSign>
    <MBody><![CDATA[return x + 1;]]></MBody>
  </Adds_Methods>
</View>)";

std::size_t dead_weight_image_bytes(bool strip) {
  minilang::ClassRegistry registry;
  mail::register_all(registry);
  views::VigOptions options;
  options.strip = strip;
  views::Vig vig(&registry, options);
  auto def = views::ViewDefinition::from_xml(kDeadWeightViewXml);
  auto cls = vig.generate(def.value());
  auto view = minilang::instantiate(registry, cls.value()->name);
  return views::instance_image(*view).size();
}

void reproduce() {
  minilang::ClassRegistry registry;
  mail::register_all(registry);
  views::Vig vig(&registry);
  auto def = views::ViewDefinition::from_xml(mail::view_xml_partner());

  bench::Report report("table5_vig");
  const int iters = bench::iterations(300, 10);

  const double cold_us = bench::time_us(iters, [&] {
    minilang::ClassRegistry fresh;
    mail::register_all(fresh);
    views::VigOptions options;
    options.cache = false;
    views::Vig cold(&fresh, options);
    (void)cold.generate(def.value());
  });
  report.add("generate_cold_us", cold_us, "us", iters);

  auto cls = vig.generate(def.value());
  const double hit_us =
      bench::time_us(iters, [&] { (void)vig.generate(def.value()); });
  report.add("generate_cache_hit_us", hit_us, "us", iters);

  const double emit_us = bench::time_us(iters, [&] {
    benchmark::DoNotOptimize(
        views::generate_java_source(*cls.value(), registry));
  });
  report.add("emit_source_us", emit_us, "us", iters);

  // Member stripping: the same dead-weight view generated with and without
  // stripping; the coherence image is what every sync carries on the wire.
  const std::size_t stripped = dead_weight_image_bytes(/*strip=*/true);
  const std::size_t unstripped = dead_weight_image_bytes(/*strip=*/false);
  report.add("image_bytes_stripped", static_cast<double>(stripped), "bytes");
  report.add("image_bytes_unstripped", static_cast<double>(unstripped),
             "bytes");
  report.derived("strip_image_saving_bytes",
                 static_cast<double>(unstripped - stripped));
  std::cout << "\n  coherence image: " << unstripped << " bytes unstripped, "
            << stripped << " bytes stripped\n\n";
  report.write();

  std::cout << views::generate_java_source(*cls.value(), registry);
}

void BM_VigGenerateCold(benchmark::State& state) {
  auto def = views::ViewDefinition::from_xml(mail::view_xml_partner());
  for (auto _ : state) {
    state.PauseTiming();
    minilang::ClassRegistry registry;
    mail::register_all(registry);
    views::VigOptions options;
    options.cache = false;
    views::Vig vig(&registry, options);
    state.ResumeTiming();
    auto cls = vig.generate(def.value());
    benchmark::DoNotOptimize(cls);
  }
}
BENCHMARK(BM_VigGenerateCold);

void BM_VigCacheHit(benchmark::State& state) {
  minilang::ClassRegistry registry;
  mail::register_all(registry);
  views::Vig vig(&registry);
  auto def = views::ViewDefinition::from_xml(mail::view_xml_partner());
  (void)vig.generate(def.value());
  for (auto _ : state) {
    auto cls = vig.generate(def.value());
    benchmark::DoNotOptimize(cls);
  }
}
BENCHMARK(BM_VigCacheHit);

void BM_JavaSourceEmission(benchmark::State& state) {
  minilang::ClassRegistry registry;
  mail::register_all(registry);
  views::Vig vig(&registry);
  auto def = views::ViewDefinition::from_xml(mail::view_xml_partner());
  auto cls = vig.generate(def.value());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        views::generate_java_source(*cls.value(), registry));
  }
}
BENCHMARK(BM_JavaSourceEmission);

void BM_ViewInstantiation(benchmark::State& state) {
  minilang::ClassRegistry registry;
  mail::register_all(registry);
  views::Vig vig(&registry);
  auto def = views::ViewDefinition::from_xml(mail::view_xml_partner());
  (void)vig.generate(def.value());
  for (auto _ : state) {
    auto view = minilang::instantiate(registry, "ViewMailClient_Partner");
    benchmark::DoNotOptimize(view);
  }
}
BENCHMARK(BM_ViewInstantiation);

}  // namespace

int main(int argc, char** argv) {
  return psf::bench::run(argc, argv,
                         "Table 5: VIG-generated view source", reproduce);
}
