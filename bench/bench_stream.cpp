// SwitchboardStream (paper reference [6]): secure bulk-transport throughput
// by chunk size and payload size, against the raw seal/unseal floor.
#include <tuple>

#include "bench_util.hpp"
#include "switchboard/stream.hpp"
#include "util/rng.hpp"

namespace {

using namespace psf;
using switchboard::Connection;
using switchboard::SwitchboardStream;

struct Fixture {
  util::Rng rng{4242};
  std::shared_ptr<util::SimClock> clock = std::make_shared<util::SimClock>();
  switchboard::Network net;
  switchboard::Switchboard a{"a", &net, clock};
  switchboard::Switchboard b{"b", &net, clock};
  std::shared_ptr<Connection> conn;

  Fixture() {
    net.connect("a", "b", {util::kMillisecond, 0, false});
    switchboard::AuthorizationSuite sa, sb;
    sa.identity = drbac::Entity::create("A", rng);
    sa.authorizer = std::make_shared<switchboard::AcceptAllAuthorizer>();
    sb.identity = drbac::Entity::create("B", rng);
    sb.authorizer = std::make_shared<switchboard::AcceptAllAuthorizer>();
    conn = Connection::establish(a, b, sa, sb, rng).value();
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void reproduce() {
  Fixture& f = fixture();
  SwitchboardStream stream(f.conn, 16 * 1024);
  const util::Bytes mail_body = f.rng.next_bytes(100'000);
  stream.send(Connection::End::kA, mail_body);
  const auto stats = stream.stats();
  std::cout << "  100 KB mail body over the secure stream: " << stats.chunks
            << " sealed chunks, " << stats.wire_bytes
            << " wire bytes (overhead "
            << (stats.wire_bytes - stats.payload_bytes) << " B)\n";
  std::cout << "  every chunk rides the same ChaCha20+HMAC+replay-window\n"
            << "  machinery as RPC frames; suspension and liveness rules\n"
            << "  apply unchanged.\n";

  // Perf trajectory (BENCH_stream.json): bulk throughput rides the same
  // zero-copy seal/unseal path as RPC frames, so the trajectory doubles as
  // a regression guard for the scratch-buffer plumbing.
  bench::Report report("stream");
  for (const auto& [label, payload_size, chunk_size] :
       {std::tuple{"stream_64k_chunk1k", std::size_t{64 * 1024},
                   std::size_t{1024}},
        std::tuple{"stream_64k_chunk16k", std::size_t{64 * 1024},
                   std::size_t{16 * 1024}},
        std::tuple{"stream_1m_chunk16k", std::size_t{1 << 20},
                   std::size_t{16 * 1024}}}) {
    SwitchboardStream s(f.conn, chunk_size);
    const util::Bytes payload = f.rng.next_bytes(payload_size);
    const int iters = bench::iterations(payload_size >= (1 << 20) ? 50 : 200);
    const double us = bench::time_us(iters, [&] {
      s.send(Connection::End::kA, payload);
      benchmark::DoNotOptimize(s.receive(Connection::End::kB, payload.size()));
    });
    report.add(label, us, "us", iters);
    if (us > 0) {
      report.derived(std::string(label) + "_mb_s",
                     static_cast<double>(payload_size) / us);
    }
  }
  report.write();
}

void BM_StreamSendByChunkSize(benchmark::State& state) {
  Fixture& f = fixture();
  SwitchboardStream stream(f.conn, static_cast<std::size_t>(state.range(0)));
  const util::Bytes payload = f.rng.next_bytes(64 * 1024);
  for (auto _ : state) {
    stream.send(Connection::End::kA, payload);
    benchmark::DoNotOptimize(
        stream.receive(Connection::End::kB, payload.size()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_StreamSendByChunkSize)->Arg(1024)->Arg(16384)->Arg(65536);

void BM_StreamSendByPayload(benchmark::State& state) {
  Fixture& f = fixture();
  SwitchboardStream stream(f.conn, 16 * 1024);
  const util::Bytes payload =
      f.rng.next_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    stream.send(Connection::End::kA, payload);
    benchmark::DoNotOptimize(
        stream.receive(Connection::End::kB, payload.size()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_StreamSendByPayload)->Arg(1024)->Arg(65536)->Arg(1 << 20);

}  // namespace

int main(int argc, char** argv) {
  return psf::bench::run(
      argc, argv, "SwitchboardStream: secure bulk transport", reproduce);
}
