// Shared helpers for the benchmark binaries: every binary prints its paper
// reproduction first (so `./bench_*` regenerates the table), then runs the
// google-benchmark timings.
#pragma once

#include <benchmark/benchmark.h>

#include <functional>
#include <iostream>

namespace psf::bench {

/// Print the reproduction banner + body, then hand over to google-benchmark.
inline int run(int argc, char** argv, const std::string& title,
               const std::function<void()>& reproduce) {
  std::cout << "==================================================\n"
            << "  " << title << "\n"
            << "==================================================\n";
  reproduce();
  std::cout << "\n-- timings --\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace psf::bench
