// Shared helpers for the benchmark binaries: every binary prints its paper
// reproduction first (so `./bench_*` regenerates the table), then runs the
// google-benchmark timings.
//
// Machine-readable output (ISSUE 2): benchmarks that track a perf
// trajectory write a `BENCH_<id>.json` snapshot (schema `psf-bench-v1`,
// documented in EXPERIMENTS.md) via Report. Two environment variables shape
// a run:
//   PSF_BENCH_SMOKE=1     reduced iteration counts and google-benchmark
//                         skipped — the CI bench-smoke mode; the JSON is
//                         still written (context.smoke records the mode).
//   PSF_BENCH_JSON_DIR=d  directory for BENCH_*.json (default: cwd).
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace psf::bench {

/// True when PSF_BENCH_SMOKE is set to a non-zero value.
inline bool smoke_mode() {
  const char* env = std::getenv("PSF_BENCH_SMOKE");
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

/// Iteration count for hand-rolled measurement loops: `full` normally, a
/// token few in smoke mode (CI checks shape, not noise-free numbers).
inline int iterations(int full, int smoke = 3) {
  return smoke_mode() ? smoke : full;
}

/// Average wall-clock microseconds per call of `fn` over `iters` calls.
inline double time_us(int iters, const std::function<void()>& fn) {
  if (iters <= 0) return 0.0;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
             elapsed)
             .count() /
         static_cast<double>(iters);
}

/// Accumulates named measurements and writes `BENCH_<id>.json`. Every
/// future PR reads the previous snapshot as its perf baseline, so the
/// schema is append-only: new fields may be added, existing ones keep their
/// meaning.
class Report {
 public:
  explicit Report(std::string id) : id_(std::move(id)) {}

  /// Record one measurement. `unit` is free-form but "us" (microseconds per
  /// operation) is the convention; `iters` is how many operations the value
  /// was averaged over.
  void add(const std::string& name, double value, const std::string& unit,
           long iters = 1) {
    measurements_.push_back({name, value, unit, iters});
  }

  /// Record a dimensionless derived figure (a ratio such as a speedup).
  void derived(const std::string& name, double value) {
    derived_.emplace_back(name, value);
  }

  std::string json() const {
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(3);
    const auto now_s =
        std::chrono::duration_cast<std::chrono::seconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    os << "{\n";
    os << "  \"schema\": \"psf-bench-v1\",\n";
    os << "  \"bench\": \"" << id_ << "\",\n";
    os << "  \"context\": {\"unix_time\": " << now_s
       << ", \"smoke\": " << (smoke_mode() ? "true" : "false") << "},\n";
    os << "  \"measurements\": [\n";
    for (std::size_t i = 0; i < measurements_.size(); ++i) {
      const Measurement& m = measurements_[i];
      os << "    {\"name\": \"" << m.name << "\", \"value\": " << m.value
         << ", \"unit\": \"" << m.unit << "\", \"iterations\": " << m.iters
         << "}" << (i + 1 < measurements_.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"derived\": {";
    for (std::size_t i = 0; i < derived_.size(); ++i) {
      os << "\"" << derived_[i].first << "\": " << derived_[i].second
         << (i + 1 < derived_.size() ? ", " : "");
    }
    os << "}\n";
    os << "}\n";
    return os.str();
  }

  std::string path() const {
    const char* dir = std::getenv("PSF_BENCH_JSON_DIR");
    const std::string prefix =
        (dir != nullptr && *dir != '\0') ? std::string(dir) + "/" : "";
    return prefix + "BENCH_" + id_ + ".json";
  }

  /// Write the snapshot; announces the path on stdout so bench logs record
  /// where the trajectory point went.
  void write() const {
    const std::string file = path();
    std::ofstream out(file);
    out << json();
    std::cout << "\n  wrote " << file << "\n";
  }

 private:
  struct Measurement {
    std::string name;
    double value;
    std::string unit;
    long iters;
  };
  std::string id_;
  std::vector<Measurement> measurements_;
  std::vector<std::pair<std::string, double>> derived_;
};

/// Print the reproduction banner + body, then hand over to google-benchmark
/// (skipped in smoke mode — the reproduction phase already wrote the JSON
/// snapshot, which is all CI validates).
inline int run(int argc, char** argv, const std::string& title,
               const std::function<void()>& reproduce) {
  std::cout << "==================================================\n"
            << "  " << title << "\n"
            << "==================================================\n";
  reproduce();
  if (smoke_mode()) {
    std::cout << "\n-- timings skipped (PSF_BENCH_SMOKE) --\n";
    return 0;
  }
  std::cout << "\n-- timings --\n";
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace psf::bench
