// Claim C1 (paper §5, related work): credential storage scaling.
//   GSI:   every provider stores state for every user       -> P x U
//   CAS:   communities factor the product                   -> C x (P + U)
//   dRBAC: one credential per principal + cross-domain maps -> P + U + c
// The reproduction prints the analytic series; the benchmark *constructs*
// the dRBAC credential set for growing populations and proves a user's
// access, showing cost grows with chain length, not population product.
#include <iomanip>

#include "bench_util.hpp"
#include "drbac/engine.hpp"
#include "psf/guard.hpp"

namespace {

using namespace psf;
using drbac::Principal;

void reproduce() {
  std::cout << "  P=providers U=users C=communities c=cross-domain maps\n";
  std::cout << std::setw(8) << "P" << std::setw(8) << "U" << std::setw(6)
            << "C" << std::setw(12) << "GSI PxU" << std::setw(14)
            << "CAS Cx(P+U)" << std::setw(14) << "dRBAC P+U+c" << "\n";
  const long communities = 8;
  for (long scale : {10L, 100L, 1000L, 10000L}) {
    const long providers = scale;
    const long users = 10 * scale;
    const long cross_maps = 2 * communities;  // role maps between domains
    std::cout << std::setw(8) << providers << std::setw(8) << users
              << std::setw(6) << communities << std::setw(12)
              << providers * users << std::setw(14)
              << communities * (providers + users) << std::setw(14)
              << providers + users + cross_maps << "\n";
  }
  std::cout << "  shape check: dRBAC grows linearly; GSI quadratically; CAS\n"
            << "  linearly with a community factor — dRBAC smallest, as the\n"
            << "  paper claims.\n";
}

// Build a two-domain dRBAC world with `users` users and one role mapping;
// credential count is users + providers + O(1).
struct Population {
  util::Rng rng{11};
  drbac::Repository repo;
  framework::Guard home{"Home", &repo, rng};
  framework::Guard away{"Away", &repo, rng};
  std::vector<drbac::Entity> users;

  explicit Population(int user_count) {
    for (int i = 0; i < user_count; ++i) {
      users.push_back(home.create_principal("user" + std::to_string(i)));
      home.grant(Principal::of_entity(users.back()), "Member");
    }
    // One cross-domain map covers every user (the dRBAC economy).
    away.issue(Principal::of_role(home.entity(), "Member"),
               away.role("Member"));
  }
};

void BM_DrbacCredentialSetConstruction(benchmark::State& state) {
  const int users = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Population population(users);
    benchmark::DoNotOptimize(population.repo.size());
  }
  state.SetComplexityN(users);
}
BENCHMARK(BM_DrbacCredentialSetConstruction)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Complexity(benchmark::oN);

void BM_CrossDomainProofAtScale(benchmark::State& state) {
  // Proof cost should be flat in population size (indexed repository).
  const int users = static_cast<int>(state.range(0));
  Population population(users);
  drbac::Engine engine(&population.repo);
  for (auto _ : state) {
    auto proof = engine.prove(Principal::of_entity(population.users[0]),
                              population.away.role("Member"), 0);
    benchmark::DoNotOptimize(proof);
  }
}
BENCHMARK(BM_CrossDomainProofAtScale)->Arg(10)->Arg(100)->Arg(1000);

void BM_RepositoryLookupAtScale(benchmark::State& state) {
  const int users = static_cast<int>(state.range(0));
  Population population(users);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        population.repo.by_target(population.home.role("Member")));
  }
}
BENCHMARK(BM_RepositoryLookupAtScale)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace

int main(int argc, char** argv) {
  return psf::bench::run(
      argc, argv,
      "Claim C1: storage scaling — GSI PxU vs CAS Cx(P+U) vs dRBAC P+U+c",
      reproduce);
}
